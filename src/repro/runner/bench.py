"""Event-loop microbenchmark emitter (``python -m repro bench``).

Measures raw simulator throughput in events/sec with two shapes:

* ``chain`` — a single self-rescheduling event: the heap stays near-empty,
  so the number isolates per-event fixed costs (allocation, push/pop,
  dispatch);
* ``loaded`` — the same workload on top of a ~1000-event heap, so heap
  sift comparisons dominate.

Results are written to ``BENCH_events_per_sec.json`` (stdlib only,
``time.perf_counter``), giving future PRs a perf trajectory to compare
against.  ``seed_reference`` pins the numbers measured on the *seed*
kernel (dataclass events, O(n) ``pending``) on the same reference
machine, so the file itself documents the speedup of the current kernel.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Optional

from repro.machine.event import Simulator

__all__ = [
    "bench_events_per_sec",
    "check_bench",
    "emit_bench",
    "DEFAULT_BENCH_PATH",
    "REGRESSION_TOLERANCE",
]

#: ``bench --check`` fails when a shape regresses more than this fraction
#: below the committed baseline.
REGRESSION_TOLERANCE = 0.10

DEFAULT_BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_events_per_sec.json"

#: events/sec of the pre-optimization kernel (commit c25fa61) on the
#: reference machine, same benchmark bodies.  Kept static: the seed code
#: no longer exists in-tree to re-measure.
SEED_REFERENCE = {"chain": 1_057_240, "loaded": 372_679}


def _bench_chain(sim_cls, n: int) -> float:
    sim = sim_cls()
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < n:
            sim.schedule(1e-6, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    return n / (time.perf_counter() - t0)


def _bench_loaded(sim_cls, n: int, fanout: int = 1000) -> float:
    sim = sim_cls()
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < n:
            sim.schedule(1e-6 * ((count[0] % 7) + 1), tick)

    for i in range(fanout):
        sim.schedule(1e-6 * i, tick)
    t0 = time.perf_counter()
    sim.run()
    return count[0] / (time.perf_counter() - t0)


def bench_events_per_sec(events: int = 200_000, reps: int = 5) -> dict:
    """Run both shapes ``reps`` times; report the best rate of each
    (best-of filters scheduler noise, the standard microbenchmark move)."""
    chain = max(_bench_chain(Simulator, events) for _ in range(reps))
    loaded = max(_bench_loaded(Simulator, events) for _ in range(reps))
    return {
        "benchmark": "simulator_event_throughput",
        "events": events,
        "reps": reps,
        "events_per_sec": {"chain": round(chain), "loaded": round(loaded)},
        "seed_reference": dict(SEED_REFERENCE),
        "speedup_vs_seed": {
            "chain": round(chain / SEED_REFERENCE["chain"], 2),
            "loaded": round(loaded / SEED_REFERENCE["loaded"], 2),
        },
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }


def emit_bench(
    path: Optional[Path | str] = None, events: int = 200_000, reps: int = 5
) -> dict:
    """Run the benchmark and write the JSON report; returns the report."""
    out = Path(path) if path is not None else DEFAULT_BENCH_PATH
    report = bench_events_per_sec(events=events, reps=reps)
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_bench(
    path: Optional[Path | str] = None,
    events: Optional[int] = None,
    reps: Optional[int] = None,
    tolerance: float = REGRESSION_TOLERANCE,
    report: Optional[dict] = None,
) -> dict:
    """Compare a fresh measurement against the committed baseline.

    Returns ``{"ok", "tolerance", "baseline", "measured", "ratios",
    "failures"}``; ``ok`` is False when any shape's measured rate falls
    more than ``tolerance`` below the baseline.  The baseline file is
    never rewritten by a check (pass ``report`` to reuse a measurement).

    ``events``/``reps`` default to what the baseline was measured with
    (throughput depends on event count — the ``loaded`` shape amortizes
    its 1000-event fan-out over the run — so a mismatched check would
    flag phantom regressions).
    """
    baseline_path = Path(path) if path is not None else DEFAULT_BENCH_PATH
    doc = json.loads(baseline_path.read_text())
    baseline = doc["events_per_sec"]
    if report is None:
        if events is None:
            events = doc.get("events", 200_000)
        if reps is None:
            reps = doc.get("reps", 5)
        report = bench_events_per_sec(events=events, reps=reps)
    measured = report["events_per_sec"]
    ratios = {k: measured[k] / baseline[k] for k in baseline}
    failures = [k for k, r in ratios.items() if r < 1.0 - tolerance]
    return {
        "ok": not failures,
        "tolerance": tolerance,
        "baseline": dict(baseline),
        "measured": dict(measured),
        "ratios": {k: round(r, 3) for k, r in ratios.items()},
        "failures": failures,
    }
