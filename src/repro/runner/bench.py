"""Event-loop microbenchmark emitter (``python -m repro bench``).

Measures raw simulator throughput in events/sec with two shapes:

* ``chain`` — a single self-rescheduling event: the heap stays near-empty,
  so the number isolates per-event fixed costs (allocation, push/pop,
  dispatch);
* ``loaded`` — the same workload on top of a ~1000-event heap, so heap
  sift comparisons dominate.

Results are written to ``BENCH_events_per_sec.json`` (stdlib only,
``time.perf_counter``), giving future PRs a perf trajectory to compare
against.  ``seed_reference`` pins the numbers measured on the *seed*
kernel (dataclass events, O(n) ``pending``) on the same reference
machine, so the file itself documents the speedup of the current kernel.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.machine.event import Simulator

__all__ = [
    "bench_checkpoint_overhead",
    "bench_events_per_sec",
    "bench_sharded",
    "bench_warm_start",
    "check_bench",
    "emit_bench",
    "emit_warm_start_bench",
    "CHECKPOINT_OVERHEAD_TOLERANCE",
    "DEFAULT_BENCH_PATH",
    "REGRESSION_TOLERANCE",
    "WARM_START_BENCH_PATH",
]

#: ``bench --check`` fails when a shape regresses more than this fraction
#: below the committed baseline.
REGRESSION_TOLERANCE = 0.10

#: Unused checkpoint machinery must cost (nearly) nothing: the chain rate
#: on a machine-owned simulator carrying snapshot roots may not fall more
#: than this fraction below the plain-simulator chain rate.
CHECKPOINT_OVERHEAD_TOLERANCE = 0.05

DEFAULT_BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_events_per_sec.json"

WARM_START_BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_warm_start.json"

#: events/sec of the pre-optimization kernel (commit c25fa61) on the
#: reference machine, same benchmark bodies.  Kept static: the seed code
#: no longer exists in-tree to re-measure.
SEED_REFERENCE = {"chain": 1_057_240, "loaded": 372_679}


def _chain_rate(sim, n: int) -> float:
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < n:
            sim.schedule(1e-6, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    return n / (time.perf_counter() - t0)


def _bench_chain(sim_cls, n: int) -> float:
    return _chain_rate(sim_cls(), n)


def _bench_loaded(sim_cls, n: int, fanout: int = 1000) -> float:
    sim = sim_cls()
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < n:
            sim.schedule(1e-6 * ((count[0] % 7) + 1), tick)

    for i in range(fanout):
        sim.schedule(1e-6 * i, tick)
    t0 = time.perf_counter()
    sim.run()
    return count[0] / (time.perf_counter() - t0)


def bench_events_per_sec(events: int = 200_000, reps: int = 5) -> dict:
    """Run both shapes ``reps`` times; report the best rate of each
    (best-of filters scheduler noise, the standard microbenchmark move)."""
    chain = max(_bench_chain(Simulator, events) for _ in range(reps))
    loaded = max(_bench_loaded(Simulator, events) for _ in range(reps))
    return {
        "benchmark": "simulator_event_throughput",
        "events": events,
        "reps": reps,
        "events_per_sec": {"chain": round(chain), "loaded": round(loaded)},
        "seed_reference": dict(SEED_REFERENCE),
        "speedup_vs_seed": {
            "chain": round(chain / SEED_REFERENCE["chain"], 2),
            "loaded": round(loaded / SEED_REFERENCE["loaded"], 2),
        },
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }


def bench_sharded(
    events: int = 200_000,
    shard_counts: tuple = (1, 2, 4),
    fanout: int = 1000,
    reps: int = 5,
    num_nodes: int = 32,
) -> dict:
    """Sharded-engine throughput at 1/2/4 shards, both shapes.

    Runs the :mod:`repro.shard` window engine inline (all shards in one
    process — on a single visible core that is also the fastest mode;
    the speedup comes from the vectorized :class:`EventLanes` batch
    kernel, not from process parallelism):

    * ``loaded`` — the wide chain population, lane-vectorized per shard
      with cross-shard ticks every 16 steps.  This is the headline
      number: whole same-window waves dispatch with one Python call.
      Measured over a larger budget (``5 x events``) because the batch
      kernel finishes 200k events in milliseconds.
    * ``chain`` — one serial chain per shard on the per-event windowed
      drain; batch width 1, so this is the honest no-batching floor
      (window barriers make it *slower* than the unsharded chain).

    The window width is one minimum-distance mesh hop under the
    Paragon-like latency model, exactly what a strategy run on the
    default machine gets.
    """
    from repro.machine.network import PARAGON_LIKE
    from repro.shard import run_program
    from repro.shard.programs import ChainStorm, LoadedStorm

    delta = PARAGON_LIKE.per_hop  # one minimum-distance hop
    loaded_events = events * 5
    loaded: dict[str, int] = {}
    chain: dict[str, int] = {}
    for shards in shard_counts:
        best = 0.0
        for _ in range(reps):
            t0 = time.perf_counter()
            res = run_program(
                LoadedStorm(fanout=fanout), num_nodes=num_nodes,
                shards=shards, delta=delta, budget_events=loaded_events)
            dt = time.perf_counter() - t0
            best = max(best, sum(r["executed"] for r in res) / dt)
        loaded[str(shards)] = round(best)
        best = 0.0
        for _ in range(reps):
            t0 = time.perf_counter()
            res = run_program(
                ChainStorm(), num_nodes=num_nodes, shards=shards,
                delta=delta, budget_events=events)
            dt = time.perf_counter() - t0
            best = max(best, sum(r["executed"] for r in res) / dt)
        chain[str(shards)] = round(best)
    return {
        "benchmark": "sharded_event_throughput",
        "engine": "repro.shard (inline mode, conservative windows)",
        "events": events,
        "loaded_events": loaded_events,
        "reps": reps,
        "shard_counts": list(shard_counts),
        "fanout": fanout,
        "window_seconds": delta,
        "events_per_sec": {"loaded": loaded, "chain": chain},
    }


def bench_checkpoint_overhead(events: int = 200_000, reps: int = 5) -> dict:
    """Chain throughput with vs without the checkpoint machinery present.

    Both arms run the identical self-rescheduling chain; the "rooted" arm
    runs it on a :class:`~repro.machine.machine.Machine`-owned simulator
    with snapshot roots registered — i.e. a fully checkpointable machine
    on which no checkpoint is ever taken.  Snapshotting is a
    pause-the-world pickle, so nothing of it should live in the event
    loop; this gate catches any future drift toward per-event
    bookkeeping.
    """
    from repro.machine import Machine, MeshTopology

    def rooted_sim():
        machine = Machine(MeshTopology(2, 2), seed=1)
        machine.register_snapshot_root("bench", {"marker": True})
        return machine.sim

    plain = max(_bench_chain(Simulator, events) for _ in range(reps))
    rooted = max(_chain_rate(rooted_sim(), events) for _ in range(reps))
    return {
        "events": events,
        "reps": reps,
        "plain": round(plain),
        "with_roots": round(rooted),
        "ratio": round(rooted / plain, 3),
    }


def bench_warm_start(
    num_nodes: int = 32,
    seed: int = 1234,
    workload_keys: Optional[list] = None,
) -> dict:
    """Cold vs warm-started Table-I grid (``small`` scale), end to end.

    The cold arm executes every cell from scratch with the trace cache
    scoped *per cell*, so each cell pays its full shared prefix (trace
    generation + machine construction) — the regime warm-start targets:
    at paper scale the prefix is minutes of work and no cache exists on
    first run.  The warm arm materializes each distinct prefix once,
    checkpoints it, and forks every cell from the snapshot
    (:mod:`repro.runner.prefix`).  Both arms run serially in-process and
    must produce identical metrics.
    """
    from repro.apps.cache import _ENV_VAR as TRACE_CACHE_ENV
    from repro.experiments.table1 import table1_requests

    from .executor import run_requests_report
    from .spec import execute_request

    requests = table1_requests(
        num_nodes=num_nodes, scale="small", seed=seed,
        workload_keys=workload_keys)
    prev_trace_dir = os.environ.get(TRACE_CACHE_ENV)
    try:
        with tempfile.TemporaryDirectory(prefix="repro-warm-bench-") as tmp:
            tmp_path = Path(tmp)
            t0 = time.perf_counter()
            cold = []
            for i, req in enumerate(requests):
                os.environ[TRACE_CACHE_ENV] = str(tmp_path / f"cold-{i}")
                cold.append(execute_request(req))
            cold_seconds = time.perf_counter() - t0

            os.environ[TRACE_CACHE_ENV] = str(tmp_path / "warm-traces")
            t0 = time.perf_counter()
            report = run_requests_report(
                requests, jobs=1, cache=None,
                warm_start=str(tmp_path / "snapshots"))
            warm_seconds = time.perf_counter() - t0
    finally:
        if prev_trace_dir is None:
            os.environ.pop(TRACE_CACHE_ENV, None)
        else:
            os.environ[TRACE_CACHE_ENV] = prev_trace_dir

    return {
        "benchmark": "warm_start_sweep",
        "grid": {
            "table": "table1",
            "scale": "small",
            "num_nodes": num_nodes,
            "seed": seed,
            "cells": len(requests),
            "prefixes": report.warm_prefixes,
        },
        "cold_seconds": round(cold_seconds, 2),
        "warm_seconds": round(warm_seconds, 2),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "identical": cold == report.results,
        "conditions": (
            "serial in-process; cold arm pays the full prefix per cell "
            "(per-cell trace cache scope); warm arm builds each prefix "
            "once and forks cells from its snapshot"
        ),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }


def emit_warm_start_bench(
    path: Optional[Path | str] = None,
    num_nodes: int = 32,
    seed: int = 1234,
) -> dict:
    """Run the warm-start benchmark and write the JSON report."""
    out = Path(path) if path is not None else WARM_START_BENCH_PATH
    report = bench_warm_start(num_nodes=num_nodes, seed=seed)
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def emit_bench(
    path: Optional[Path | str] = None,
    events: int = 200_000,
    reps: int = 5,
    shard_counts: tuple = (1, 2, 4),
) -> dict:
    """Run the benchmarks and write the JSON report; returns the report.

    The document carries the serial kernel numbers at the top level
    (back-compatible shape) plus a ``sharded`` section from
    :func:`bench_sharded`.
    """
    out = Path(path) if path is not None else DEFAULT_BENCH_PATH
    report = bench_events_per_sec(events=events, reps=reps)
    sharded = bench_sharded(events=events, reps=reps,
                            shard_counts=tuple(shard_counts))
    loaded = report["events_per_sec"]["loaded"]
    sharded["speedup_vs_serial_loaded"] = {
        shards: round(rate / loaded, 2)
        for shards, rate in sharded["events_per_sec"]["loaded"].items()
    }
    report["sharded"] = sharded
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_bench(
    path: Optional[Path | str] = None,
    events: Optional[int] = None,
    reps: Optional[int] = None,
    tolerance: float = REGRESSION_TOLERANCE,
    report: Optional[dict] = None,
    checkpoint_report: Optional[dict] = None,
    sharded_report: Optional[dict] = None,
) -> dict:
    """Compare a fresh measurement against the committed baseline.

    Returns ``{"ok", "tolerance", "baseline", "measured", "ratios",
    "failures", "checkpoint"}``; ``ok`` is False when any shape's
    measured rate falls more than ``tolerance`` below the baseline, or
    when the checkpoint-overhead gate fails.  The baseline file is never
    rewritten by a check (pass ``report`` to reuse a measurement).

    When the baseline document carries a ``sharded`` section (written by
    :func:`emit_bench` since the shard engine landed), every
    shape-at-shard-count rate in it is gated at the same ``tolerance``
    under keys like ``sharded:loaded@4``.  Baselines without the section
    (older files) skip the sharded gate entirely.

    ``events``/``reps`` default to what the baseline was measured with
    (throughput depends on event count — the ``loaded`` shape amortizes
    its 1000-event fan-out over the run — so a mismatched check would
    flag phantom regressions).

    The checkpoint gate (:func:`bench_checkpoint_overhead`) is
    self-relative — two arms measured side by side, no baseline file —
    so it only runs when this call measures live; a caller supplying a
    canned ``report`` gets no gate unless it also supplies a
    ``checkpoint_report``.
    """
    baseline_path = Path(path) if path is not None else DEFAULT_BENCH_PATH
    doc = json.loads(baseline_path.read_text())
    baseline = doc["events_per_sec"]
    baseline_sharded = (doc.get("sharded") or {}).get("events_per_sec")
    if report is None:
        if events is None:
            events = doc.get("events", 200_000)
        if reps is None:
            reps = doc.get("reps", 5)
        report = bench_events_per_sec(events=events, reps=reps)
        if checkpoint_report is None:
            checkpoint_report = bench_checkpoint_overhead(
                events=events, reps=reps)
        if sharded_report is None and baseline_sharded is not None:
            sharded_report = bench_sharded(events=events, reps=reps)
    if sharded_report is None:
        sharded_report = report.get("sharded")
    measured = report["events_per_sec"]
    ratios = {k: measured[k] / baseline[k] for k in baseline}
    if baseline_sharded is not None and sharded_report is not None:
        got = sharded_report["events_per_sec"]
        for shape, per_count in baseline_sharded.items():
            for count, rate in per_count.items():
                m = got.get(shape, {}).get(count)
                if m is not None:
                    ratios[f"sharded:{shape}@{count}"] = m / rate
        baseline = {
            **baseline,
            **{f"sharded:{shape}@{count}": rate
               for shape, per_count in baseline_sharded.items()
               for count, rate in per_count.items()},
        }
        measured = {
            **measured,
            **{f"sharded:{shape}@{count}": m
               for shape, per_count in got.items()
               for count, m in per_count.items()},
        }
    failures = [k for k, r in ratios.items() if r < 1.0 - tolerance]
    checkpoint = None
    if checkpoint_report is not None:
        checkpoint = {
            **checkpoint_report,
            "tolerance": CHECKPOINT_OVERHEAD_TOLERANCE,
        }
        if checkpoint_report["ratio"] < 1.0 - CHECKPOINT_OVERHEAD_TOLERANCE:
            failures.append("checkpoint_overhead")
    return {
        "ok": not failures,
        "tolerance": tolerance,
        "baseline": dict(baseline),
        "measured": dict(measured),
        "ratios": {k: round(r, 3) for k, r in ratios.items()},
        "failures": failures,
        "checkpoint": checkpoint,
    }
