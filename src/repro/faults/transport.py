"""Ack/retransmit envelope for protocol messages.

``Node.send(reliable=True)`` lands here when a fault injector is
attached.  The envelope provides at-most-once *delivery to the handler*
and at-least-once *transmission*:

* the sender keeps an entry per message, retransmitting on a sim-time
  timer (``node.after``) with bounded exponential backoff until acked;
* the receiver deduplicates by ``Message.msg_id`` (globally unique per
  process) and acks at *arrival classification* — before the handler's
  CPU item runs — so the ack round trip is a pure wire round trip and a
  busy receiver never triggers spurious retransmission.  Envelope
  control traffic (acks, ack processing) is free of CPU charge; the data
  message itself pays full send/receive freight as usual;
* the early ack transfers responsibility to the receiver: every
  classified-but-not-yet-handled entry sits in the receiver-side
  ``pending`` table until its handler actually runs (``delivered``).  At
  crash detection the envelope surfaces exactly the entries whose
  handler will never run — unclassified sends toward the dead node, plus
  its pending classified arrivals — to the driver for re-scheduling,
  and poisons their ids so copies still on the wire are swallowed.  An
  entry from a crashed *sender* whose handler is queued at a live
  receiver is left to run — rescuing it too would execute it twice.

Determinism: entries live in insertion-ordered dicts, timers on the
global event heap; no wall clock, no unordered iteration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.machine.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine
    from repro.machine.node import Node

__all__ = ["ReliableTransport", "ACK_KIND"]

#: Message kind used for envelope acknowledgements (best-effort sends).
ACK_KIND = "fault.ack"


class _Entry:
    """Sender-side bookkeeping for one reliable message."""

    __slots__ = ("msg", "tasks_carried", "node", "attempts", "timer",
                 "delivered", "acked")

    def __init__(self, msg: Message, tasks_carried: int, node: "Node") -> None:
        self.msg = msg
        self.tasks_carried = tasks_carried
        self.node = node
        self.attempts = 0
        self.timer = None
        self.delivered = False
        self.acked = False


class ReliableTransport:
    """All reliable-channel state for one machine (one per injector)."""

    def __init__(self, machine: "Machine", rto: Optional[float],
                 max_backoff_doublings: int) -> None:
        self.machine = machine
        #: unacked in-flight entries, by msg_id (insertion-ordered).
        self.entries: dict[int, _Entry] = {}
        #: receiver side: classified (acked) but handler not yet run.
        self.pending: dict[int, _Entry] = {}
        #: msg_ids already handled (or poisoned by crash rescue) at receivers.
        self.seen: set[int] = set()
        #: detected-dead ranks: sends to these surface immediately.
        self.dead: set[int] = set()
        self.rto0 = rto if rto is not None else self._derive_rto(machine)
        self.max_backoff_doublings = max_backoff_doublings
        self.retransmits = 0
        self.acks = 0
        #: largest attempt count any single entry ever reached — the
        #: bounded-retransmit invariant the chaos checker asserts.
        self.max_attempts = 0
        for node in machine.nodes:
            node.on(ACK_KIND, self._on_ack)
        #: callback(msg, tasks_carried) for sends addressed to a known-dead
        #: node after detection; set by the driver.
        self.on_undeliverable: Optional[Callable[[Message, int], None]] = None

    @staticmethod
    def _derive_rto(machine: "Machine") -> float:
        """A round trip across the machine plus slack: generous enough
        that a healthy exchange never times out, tight enough that sweeps
        over lossy links converge quickly."""
        lat = machine.latency
        d = max(1, machine.topology.diameter())
        one_way = lat.software_overhead + d * lat.per_hop + 64 * lat.per_byte
        return 4.0 * (2.0 * one_way + 2.0 * lat.software_overhead)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(self, node: "Node", dest: int, kind: str, payload: Any,
             size: int, tasks_carried: int) -> None:
        msg = Message(node.rank, dest, kind, payload, size)
        if dest in self.dead:
            # Known-dead destination: never hits the wire.  Surface to the
            # driver on a fresh event so rescue runs outside the caller.
            self.seen.add(msg.msg_id)
            self.machine.sim.schedule(0.0, self._surface, msg, tasks_carried)
            return
        entry = _Entry(msg, tasks_carried, node)
        self.entries[msg.msg_id] = entry
        node.exec_cpu(self.machine.latency.endpoint_cpu(msg.size), "overhead",
                      self._attempt, entry)

    def _surface(self, msg: Message, tasks_carried: int) -> None:
        if self.on_undeliverable is not None:
            self.on_undeliverable(msg, tasks_carried)

    def _attempt(self, entry: _Entry) -> None:
        if entry.acked or entry.node.crashed:
            return
        if entry.msg.msg_id not in self.entries:
            return
        self.machine.network.transmit(entry.msg, entry.tasks_carried)
        backoff = self.rto0 * (1 << min(entry.attempts, self.max_backoff_doublings))
        entry.timer = entry.node.after(backoff, self._on_timeout, entry)

    def _on_timeout(self, entry: _Entry) -> None:
        if entry.acked or entry.msg.msg_id not in self.entries:
            return
        if entry.msg.dest in self.dead:
            # detection beat the timeout; crash rescue owns this entry now
            return
        entry.attempts += 1
        self.retransmits += 1
        if entry.attempts > self.max_attempts:
            self.max_attempts = entry.attempts
        entry.node.exec_cpu(
            self.machine.latency.endpoint_cpu(entry.msg.size), "overhead",
            self._attempt, entry)

    def _on_ack(self, msg: Message) -> None:
        entry = self.entries.pop(msg.payload, None)
        if entry is not None:
            entry.acked = True
            self.acks += 1
            if entry.timer is not None:
                entry.timer.cancel()
                entry.timer = None

    # ------------------------------------------------------------------
    # receiver side (driven by FaultInjector.intercept_dispatch)
    # ------------------------------------------------------------------
    def _ack(self, receiver: int, src: int, mid: int) -> None:
        """Emit an ack directly onto the wire (no CPU charge; it still
        crosses the faulty network, so lossy plans can drop it)."""
        from repro.machine.message import HEADER_BYTES

        self.machine.network.transmit(
            Message(receiver, src, ACK_KIND, mid, HEADER_BYTES))

    def classify_arrival(self, node: "Node", msg: Message):
        """Classify an arriving message.

        Returns the entry to deliver, ``None`` for a plain (non-reliable)
        message, or ``False`` for a duplicate to swallow.  First arrival
        of a reliable message is acked here — responsibility shifts to
        this receiver, tracked in ``pending`` until the handler runs.
        """
        mid = msg.msg_id
        entry = self.entries.get(mid)
        if mid in self.seen:
            if entry is not None:
                # duplicate of an unacked message: the ack was lost, re-ack
                self._ack(node.rank, msg.src, mid)
            return False
        if entry is None:
            return None
        self.seen.add(mid)
        self.pending[mid] = entry
        self._ack(node.rank, msg.src, mid)
        return entry

    def deliver(self, entry: _Entry, handler: Callable[[Message], None],
                msg: Message) -> None:
        """Receiver CPU item: mark ground-truth delivery, run the handler."""
        entry.delivered = True
        self.pending.pop(msg.msg_id, None)
        handler(msg)

    # ------------------------------------------------------------------
    # crash integration
    # ------------------------------------------------------------------
    def revive(self, rank: int) -> None:
        """A falsely-declared-dead node rejoined: accept sends to it again.

        Entries surfaced at its (false) death stay rescued and their ids
        stay poisoned — only *new* traffic flows; nothing is replayed.
        """
        self.dead.discard(rank)

    def handle_crash(self, rank: int) -> list[tuple[Message, int]]:
        """Account for a detected fail-stop of ``rank``.

        Cancels retransmission toward/from the dead node and returns the
        undelivered ``(msg, tasks_carried)`` payloads the driver must
        rescue.  Their msg_ids are poisoned so copies still on the wire
        are swallowed on arrival.  A message from the dead *sender* whose
        handler is already classified at a live receiver is left to run
        there (rescuing it too would execute it twice).
        """
        self.dead.add(rank)
        undelivered: dict[int, tuple[Message, int]] = {}
        for mid in [m for m, e in self.entries.items()
                    if e.msg.dest == rank or e.msg.src == rank]:
            entry = self.entries.pop(mid)
            if entry.timer is not None:
                entry.timer.cancel()
                entry.timer = None
            if entry.delivered:
                continue
            if entry.msg.src == rank and mid in self.pending:
                # classified at a live receiver: its handler will run
                continue
            self.seen.add(mid)
            self.pending.pop(mid, None)
            undelivered[mid] = (entry.msg, entry.tasks_carried)
        # classified arrivals queued at the dead receiver: acked, but the
        # crash wiped its CPU queue before the handler could run
        for mid in [m for m, e in self.pending.items() if e.msg.dest == rank]:
            entry = self.pending.pop(mid)
            if not entry.delivered and mid not in undelivered:
                self.seen.add(mid)
                undelivered[mid] = (entry.msg, entry.tasks_carried)
        return list(undelivered.values())
