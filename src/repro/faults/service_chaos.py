"""Service-level chaos: crash the control plane, prove nothing is lost.

PRs 3 and 5 proved the *simulated machine* survives injected faults;
this module points the same discipline at the service layer itself
(``python -m repro chaos --service``).  Four scenarios, each asserting
the recovery invariants from first principles:

``server_sigkill``
    Start a real ``python -m repro serve`` subprocess, submit sessions,
    wait until they are mid-run, ``SIGKILL`` the server, restart it on
    the same blob store, and require that **every** session id still
    exists exactly once (no lost or duplicated sessions), reaches
    ``done``, and reports metrics **bit-identical** to a direct
    fault-free :class:`repro.session.Session` run.  Full (non-smoke)
    runs kill the server twice — repeated journal replay must stay
    idempotent.
``hung_slice``
    A slice hook sleeps past the supervisor's ``slice_deadline``.  The
    hung worker is abandoned, the session rebuilt from its last
    checkpoint and retried, and the final metrics are still identical
    to the fault-free run.
``poison_slice``
    A slice hook raises on every attempt.  The session must land in
    the terminal ``failed`` state with a *structured* error frame
    (``code == "slice_failed"``, attempt counts) — surfaced to the
    client as a typed :class:`repro.service.SessionFailed` — not a
    silent stall.
``flaky_store``
    The blob store is wrapped in a seeded :class:`repro.store.FlakyStore`
    that fails writes and drops reads (plus optional latency in full
    runs).  Journal/checkpoint writes degrade; results must not: every
    session completes bit-identically and the server keeps answering.

Everything is deterministic given ``--seed`` (fault injection, retry
jitter); wall-clock behavior (which slice the SIGKILL lands in) is not,
but the invariants hold for *any* interleaving — that is the point.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

__all__ = ["ServiceChaosCase", "ServiceChaosReport", "run_service_chaos"]

#: chaos target: ~28.5k events at small scale — dozens of supervised
#: slices at SLICE_EVENTS, so a SIGKILL reliably lands mid-run
WORKLOAD = "ida-3"
NUM_NODES = 8
SCALE = "small"
SLICE_EVENTS = 400


@dataclass
class ServiceChaosCase:
    """Outcome of one scenario."""

    name: str
    ok: bool = True
    violations: list[str] = field(default_factory=list)
    detail: str = ""
    seconds: float = 0.0

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        tail = f" — {self.detail}" if self.detail else ""
        return f"service-chaos {self.name}: {status} " \
               f"({self.seconds:.1f}s){tail}"


@dataclass
class ServiceChaosReport:
    cases: list[ServiceChaosCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    def failures(self) -> list[ServiceChaosCase]:
        return [case for case in self.cases if not case.ok]


# ---------------------------------------------------------------------------
# shared plumbing
# ---------------------------------------------------------------------------
def _requests(count: int, seed0: int):
    from repro.runner import RunRequest

    return [RunRequest(workload=WORKLOAD, strategy="RIPS",
                       num_nodes=NUM_NODES, seed=seed0 + i, scale=SCALE)
            for i in range(count)]


def _direct_wire(request) -> str:
    """Canonical JSON of a fault-free direct run — the oracle."""
    from repro.service.manager import metrics_to_wire
    from repro.session import Session

    return json.dumps(metrics_to_wire(Session.from_request(request).run()),
                      sort_keys=True)


def _wire_of(doc: dict) -> str:
    return json.dumps(doc.get("metrics"), sort_keys=True)


class _Server:
    """One ``python -m repro serve`` subprocess on an ephemeral port."""

    def __init__(self, store_root: Path, extra_args: tuple = ()) -> None:
        self.store_root = store_root
        self.port_file = store_root / f"port-{os.getpid()}-{time.time_ns()}"
        src = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(src) + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else str(src))
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--port-file", str(self.port_file),
            "--store-root", str(store_root),
            "--slice-events", str(SLICE_EVENTS),
            "--checkpoint-every-slices", "4",
            "--no-cache",
            "--quota-tokens", "10000", "--quota-refill", "1000",
            "--retry-seed", "7",
            *extra_args,
        ]
        self.proc = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    def url(self, timeout: float = 30.0) -> str:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"serve subprocess exited early "
                    f"(code {self.proc.returncode})")
            if self.port_file.exists():
                text = self.port_file.read_text().strip()
                if text:
                    host, port = text.split()
                    return f"http://{host}:{port}"
            time.sleep(0.02)
        raise TimeoutError("serve subprocess never wrote its port file")

    def sigkill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------
def _scenario_server_sigkill(workdir: Path, seed: int,
                             kills: int = 1) -> ServiceChaosCase:
    from repro.service import ServiceClient

    case = ServiceChaosCase("server_sigkill")
    reqs = _requests(4, seed0=1000 + seed)
    oracle = {r.seed: _direct_wire(r) for r in reqs}
    store_root = workdir / "sigkill-store"
    store_root.mkdir(parents=True, exist_ok=True)

    server = _Server(store_root)
    sids: list[str] = []
    try:
        client = ServiceClient(server.url(), tenant="chaos")
        sids = [client.submit(r)["id"] for r in reqs]
        for round_no in range(kills):
            # wait until the surviving sessions are visibly mid-run
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                docs = [client.status(sid) for sid in sids]
                if all(d["state"] in ("done", "failed", "cancelled")
                       or d["events_processed"] > 0 for d in docs):
                    break
                time.sleep(0.02)
            server.sigkill()
            server = _Server(store_root)
            client = ServiceClient(server.url(), tenant="chaos")

        listed = [d["id"] for d in client.sessions()]
        for sid in sids:
            if listed.count(sid) != 1:
                case.violations.append(
                    f"session {sid} appears {listed.count(sid)}x after "
                    f"recovery (want exactly 1)")
        finals = {}
        for sid, req in zip(sids, reqs):
            doc = client.wait(sid, timeout=180)
            finals[sid] = doc
            if doc["state"] != "done":
                case.violations.append(
                    f"session {sid} ended {doc['state']!r}, not 'done'")
            elif _wire_of(doc) != oracle[req.seed]:
                case.violations.append(
                    f"session {sid} (seed {req.seed}) metrics differ from "
                    f"the fault-free run")
        stats = client.stats()
        case.detail = (f"{len(sids)} session(s) through {kills} SIGKILL(s), "
                       f"{stats.get('recovered', 0)} recovered by the last "
                       f"restart")
    finally:
        server.terminate()
    case.ok = not case.violations
    return case


def _scenario_hung_slice(workdir: Path, seed: int) -> ServiceChaosCase:
    from repro.service import ServiceClient, ServiceConfig, serve_background
    from repro.store import LocalDirStore

    case = ServiceChaosCase("hung_slice")
    req = _requests(1, seed0=2000 + seed)[0]
    oracle = _direct_wire(req)
    config = ServiceConfig(
        port=0, slice_events=SLICE_EVENTS, checkpoint_every_slices=4,
        slice_deadline=0.4, slice_retries=2, retry_seed=seed,
        use_result_cache=False, quota_tokens=10_000.0, quota_refill=1000.0,
        store_root=str(workdir / "hung-store"))
    fired = {"hang": False}

    def hook(rec, attempt):
        if not fired["hang"] and rec.slices >= 2 and attempt == 0:
            fired["hang"] = True
            time.sleep(1.2)  # 3x the slice deadline: a genuine hang

    with serve_background(config,
                          store=LocalDirStore(config.store_root)) as bg:
        bg.server.manager.slice_hook = hook
        client = ServiceClient(bg.url, tenant="chaos")
        doc = client.submit(req)
        final = client.wait(doc["id"], timeout=120)
        timeouts = bg.server.manager.slice_timeouts
        if final["state"] != "done":
            case.violations.append(
                f"session ended {final['state']!r} instead of recovering "
                f"from the hang")
        elif _wire_of(final) != oracle:
            case.violations.append(
                "post-hang metrics differ from the fault-free run")
        if not fired["hang"]:
            case.violations.append("the hang hook never fired")
        elif timeouts < 1:
            case.violations.append(
                "the supervisor never recorded the slice timeout")
        case.detail = f"{timeouts} slice timeout(s), retried and completed"
    case.ok = not case.violations
    return case


def _scenario_poison_slice(workdir: Path, seed: int) -> ServiceChaosCase:
    from repro.service import (
        ServiceClient,
        ServiceConfig,
        SessionFailed,
        serve_background,
    )
    from repro.store import LocalDirStore

    case = ServiceChaosCase("poison_slice")
    req = _requests(1, seed0=3000 + seed)[0]
    config = ServiceConfig(
        port=0, slice_events=SLICE_EVENTS, slice_retries=1,
        slice_backoff=0.01, retry_seed=seed, use_result_cache=False,
        quota_tokens=10_000.0, quota_refill=1000.0,
        store_root=str(workdir / "poison-store"))

    def hook(rec, attempt):
        raise RuntimeError(f"poisoned slice (attempt {attempt})")

    with serve_background(config,
                          store=LocalDirStore(config.store_root)) as bg:
        bg.server.manager.slice_hook = hook
        client = ServiceClient(bg.url, tenant="chaos")
        doc = client.submit(req)
        try:
            final = client.wait(doc["id"], timeout=120)
            case.violations.append(
                f"wait() returned {final['state']!r} instead of raising "
                f"SessionFailed")
        except SessionFailed as exc:
            if exc.code != "slice_failed":
                case.violations.append(
                    f"error code {exc.code!r}, want 'slice_failed'")
            if exc.error.get("attempts") != 2:
                case.violations.append(
                    f"error records {exc.error.get('attempts')} attempts, "
                    f"want 2 (1 + slice_retries)")
            case.detail = (f"failed as required: [{exc.code}] after "
                           f"{exc.error.get('attempt')}/"
                           f"{exc.error.get('attempts')} attempts")
    case.ok = not case.violations
    return case


def _scenario_flaky_store(workdir: Path, seed: int,
                          latency: float = 0.0) -> ServiceChaosCase:
    from repro.service import ServiceClient, ServiceConfig, serve_background
    from repro.store import FlakyStore, LocalDirStore

    case = ServiceChaosCase("flaky_store")
    reqs = _requests(3, seed0=4000 + seed)
    oracle = {r.seed: _direct_wire(r) for r in reqs}
    root = workdir / "flaky-store"
    root.mkdir(parents=True, exist_ok=True)
    flaky = FlakyStore(LocalDirStore(root), seed=seed,
                       put_fail_rate=0.25, get_miss_rate=0.10,
                       latency=latency)
    # journal_fail_threshold is raised sky-high on purpose: this
    # scenario proves results survive storage trouble, not the (separate,
    # deterministic) fault-mode shedding path tested in tests/service
    config = ServiceConfig(
        port=0, slice_events=SLICE_EVENTS, checkpoint_every_slices=2,
        retry_seed=seed, use_result_cache=False,
        journal_fail_threshold=10_000,
        quota_tokens=10_000.0, quota_refill=1000.0)

    with serve_background(config, store=flaky) as bg:
        client = ServiceClient(bg.url, tenant="chaos")
        sids = [client.submit(r)["id"] for r in reqs]
        for sid, req in zip(sids, reqs):
            doc = client.wait(sid, timeout=180)
            if doc["state"] != "done":
                case.violations.append(
                    f"session {sid} ended {doc['state']!r} under store "
                    f"faults")
            elif _wire_of(doc) != oracle[req.seed]:
                case.violations.append(
                    f"session {sid} metrics differ from the fault-free run")
        health = client.healthz()
        if "state" not in health:
            case.violations.append("healthz stopped reporting a state")
        failures = bg.server.manager.journal.write_failures \
            if bg.server.manager.journal else 0
        case.detail = (f"{flaky.injected_put_failures} injected put "
                       f"failure(s) ({failures} hit the journal), "
                       f"{flaky.injected_get_misses} injected read "
                       f"miss(es); all results intact")
        if flaky.injected_put_failures == 0:
            case.violations.append(
                "the flaky store never injected a write failure — the "
                "scenario proved nothing")
    case.ok = not case.violations
    return case


# ---------------------------------------------------------------------------
# campaign
# ---------------------------------------------------------------------------
def run_service_chaos(seed: int = 0, smoke: bool = False,
                      workdir: Optional[str] = None,
                      progress: Optional[Callable] = None
                      ) -> ServiceChaosReport:
    """Run every service-chaos scenario; returns the report.

    ``smoke`` keeps it CI-sized: one SIGKILL round, no injected store
    latency.  A full run kills the server twice (journal replay must be
    idempotent across repeated recoveries) and adds store latency.
    """
    report = ServiceChaosReport()
    own_tmp = workdir is None
    base = Path(workdir) if workdir else Path(
        tempfile.mkdtemp(prefix="repro-service-chaos-"))
    base.mkdir(parents=True, exist_ok=True)

    scenarios = [
        lambda d: _scenario_server_sigkill(d, seed,
                                           kills=1 if smoke else 2),
        lambda d: _scenario_hung_slice(d, seed),
        lambda d: _scenario_poison_slice(d, seed),
        lambda d: _scenario_flaky_store(d, seed,
                                        latency=0.0 if smoke else 0.002),
    ]
    try:
        for scenario in scenarios:
            t0 = time.monotonic()
            try:
                case = scenario(base)
            except Exception as exc:  # noqa: BLE001 - a crash IS a failure
                case = ServiceChaosCase(
                    name=getattr(scenario, "__name__", "scenario"),
                    ok=False,
                    violations=[f"scenario crashed: "
                                f"{type(exc).__name__}: {exc}"])
            case.seconds = time.monotonic() - t0
            report.cases.append(case)
            if progress is not None:
                progress(case)
    finally:
        if own_tmp:
            import shutil

            shutil.rmtree(base, ignore_errors=True)
    return report
