"""Deterministic fault injection, protocol hardening, and conservation
checking for the simulated machine.

Four layers (see EXPERIMENTS.md "Fault model"):

* **Injection** — :class:`FaultPlan` (pure data, seeded) +
  :class:`~repro.faults.inject.FaultInjector` (wire faults, outages,
  stalls, fail-stop crashes, scheduled mesh partitions), installed via
  ``Machine.attach_faults``;
* **Detection** — the oracle (``detector="oracle"``: global infallible
  knowledge ``detect_delay`` after each crash) or the in-protocol
  heartbeat detector (``detector="heartbeat"``:
  :class:`~repro.faults.detector.HeartbeatDetector`, with suspicion,
  gossip corroboration, incarnation-numbered refutation, and fencing of
  falsely declared nodes);
* **Hardening** — the ack/retransmit envelope behind
  ``Node.send(reliable=True)``
  (:class:`~repro.faults.transport.ReliableTransport`) plus the
  crash-recovery/rejoin hooks in the RIPS protocol and the driver;
* **Checking** — :func:`audit_conservation` /:func:`audit_session`, the
  post-run exactly-once (or provably-lost) invariant over tracer
  records, and the :mod:`repro.faults.chaos` harness (seeded random
  plans, invariant checking, ddmin shrinking — ``python -m repro
  chaos``).
"""

from .audit import (ConservationReport, audit_conservation, audit_session,
                    executed_task_counts)
from .detector import HeartbeatDetector
from .plan import NULL_PLAN, FaultPlan

__all__ = [
    "FaultPlan",
    "NULL_PLAN",
    "ConservationReport",
    "audit_conservation",
    "audit_session",
    "executed_task_counts",
    "HeartbeatDetector",
]
