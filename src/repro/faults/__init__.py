"""Deterministic fault injection, protocol hardening, and conservation
checking for the simulated machine.

Three layers (see EXPERIMENTS.md "Fault model"):

* **Injection** — :class:`FaultPlan` (pure data, seeded) +
  :class:`~repro.faults.inject.FaultInjector` (wire faults, outages,
  stalls, fail-stop crashes), installed via ``Machine.attach_faults``;
* **Hardening** — the ack/retransmit envelope behind
  ``Node.send(reliable=True)``
  (:class:`~repro.faults.transport.ReliableTransport`) plus the
  crash-recovery hooks in the RIPS protocol and the driver;
* **Checking** — :func:`audit_conservation`, the post-run exactly-once
  (or provably-lost) invariant over tracer records.
"""

from .audit import ConservationReport, audit_conservation, executed_task_counts
from .plan import NULL_PLAN, FaultPlan

__all__ = [
    "FaultPlan",
    "NULL_PLAN",
    "ConservationReport",
    "audit_conservation",
    "executed_task_counts",
]
