"""Post-run task-conservation audit.

The invariant: **every generated task is executed exactly once, or is
provably lost to a declared fail-stop crash.**  Anything else — a task
executed twice (a rescue raced a late delivery), a task executed zero
times with no crash to blame (a protocol deadlock or a silently dropped
transfer), an executed task the workload never generated — is a bug in
the fault-tolerance machinery, and this audit is what the test suite
asserts for every strategy × fault-plan combination.

The audit is evidence-based: executions are read back from the PR-2
tracer records (the ``task`` category spans the driver emits as tasks
complete), not from the driver's own counters, so a driver that
double-counts or miscounts cannot vouch for itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.tasks.trace import WorkloadTrace

__all__ = ["ConservationReport", "audit_conservation", "audit_session",
           "executed_task_counts"]


def executed_task_counts(records: Iterable[dict]) -> dict[int, int]:
    """Execution count per task id, from raw tracer records.

    Counts the completed ``task`` spans named ``task:<id>`` that
    ``balancers.base.Worker`` emits once per executed task.
    """
    counts: dict[int, int] = {}
    for rec in records:
        if rec.get("ph") != "X" or rec.get("cat") != "task":
            continue
        name = rec.get("name", "")
        if not name.startswith("task:"):
            continue
        tid = int(name[5:])
        counts[tid] = counts.get(tid, 0) + 1
    return counts


@dataclass
class ConservationReport:
    """Outcome of one conservation audit (all task-id lists sorted)."""

    total_tasks: int
    executed_once: int
    #: executed more than once (count > 1): always a violation.
    duplicated: list[int] = field(default_factory=list)
    #: neither executed nor declared lost: always a violation.
    missing: list[int] = field(default_factory=list)
    #: executed although declared lost: always a violation.
    lost_but_executed: list[int] = field(default_factory=list)
    #: executed task ids the workload never generated: always a violation.
    unknown: list[int] = field(default_factory=list)
    #: declared lost with no crashed node to justify it: a violation.
    unjustified_lost: list[int] = field(default_factory=list)
    #: declared lost, justified by a fail-stop crash (not a violation).
    justified_lost: list[int] = field(default_factory=list)
    crashed_nodes: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.duplicated or self.missing or self.lost_but_executed
                    or self.unknown or self.unjustified_lost)

    def summary(self) -> str:
        if self.ok:
            lost = f", {len(self.justified_lost)} lost to crashes" \
                if self.justified_lost else ""
            return (f"conservation OK: {self.executed_once}/{self.total_tasks} "
                    f"tasks executed exactly once{lost}")
        parts = []
        for label in ("duplicated", "missing", "lost_but_executed",
                      "unknown", "unjustified_lost"):
            ids = getattr(self, label)
            if ids:
                parts.append(f"{label}={ids[:10]}" +
                             ("..." if len(ids) > 10 else ""))
        return "conservation VIOLATED: " + ", ".join(parts)


def audit_conservation(
    trace: WorkloadTrace,
    records: Iterable[dict],
    lost_task_ids: Sequence[int] = (),
    crashed_nodes: Sequence[int] = (),
    counts: Optional[dict[int, int]] = None,
) -> ConservationReport:
    """Audit one run.

    Parameters
    ----------
    trace:
        The workload DAG that generated the tasks.
    records:
        Raw tracer records of the run (``metrics.extra["trace_records"]``).
    lost_task_ids:
        Tasks the driver declared lost (``metrics.extra["lost_task_ids"]``).
    crashed_nodes:
        Ranks that fail-stopped; an empty list makes any declared loss a
        violation.
    counts:
        Pre-extracted execution counts (skips re-scanning ``records``).
    """
    if counts is None:
        counts = executed_task_counts(records)
    lost = set(lost_task_ids)
    known = set(range(len(trace.tasks)))
    report = ConservationReport(
        total_tasks=len(trace.tasks),
        executed_once=sum(
            1 for tid, c in counts.items() if c == 1 and tid in known),
        crashed_nodes=sorted(crashed_nodes),
    )
    report.duplicated = sorted(t for t, c in counts.items() if c > 1)
    report.unknown = sorted(t for t in counts if t not in known)
    report.lost_but_executed = sorted(t for t in lost if t in counts)
    report.missing = sorted(known - counts.keys() - lost)
    if crashed_nodes:
        report.justified_lost = sorted(lost - counts.keys())
    else:
        report.unjustified_lost = sorted(lost)
    return report


def audit_session(session, metrics=None) -> ConservationReport:
    """Audit a completed traced :class:`~repro.session.Session` run.

    Convenience wrapper over :func:`audit_conservation` pulling the
    workload DAG, tracer records, loss declarations, and crash history
    straight from the session (the chaos harness's main loop).  Pass the
    :class:`RunMetrics` if you already hold them; otherwise they are
    recomputed from the driver.
    """
    if metrics is None:
        metrics = session.driver._metrics()
    extra = metrics.extra
    return audit_conservation(
        session.driver.trace,
        session.tracer.records,
        extra.get("lost_task_ids", ()),
        extra.get("crashed_nodes", ()),
    )
