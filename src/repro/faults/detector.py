"""In-protocol failure detection: heartbeats, suspicion, incarnations.

``FaultPlan(detector="heartbeat")`` replaces the oracle failure detector
(global, infallible knowledge ``detect_delay`` after each crash) with a
deterministic SWIM-flavored protocol running over the real mesh links:

* every node heartbeats its topology neighbors (its *monitors*) on a
  fixed period, through the normal CPU/send path — so a stalled or
  heavily loaded node naturally stops heartbeating, which is exactly how
  false positives arise;
* a monitor that misses a peer's heartbeat deadline moves the peer to
  **SUSPECT** and gossips the suspicion to the peer's other monitors and
  to the peer itself (the self-defense channel: a live suspect bumps its
  incarnation and broadcasts ``alive``);
* a monitor that is itself suspicious *and* has corroboration from a
  quorum of distinct suspecting monitors promotes the peer to **DEAD**
  and invokes :meth:`FaultInjector.declare_dead` — the same global
  transition the oracle takes, so the driver/strategy recovery machinery
  is shared;
* a **false** death declaration fences the live node (lease-style: it
  stops executing and receiving, like a crash, so rescued tasks cannot
  double-execute).  When its lease expires — or its stall window ends —
  it refutes with a higher incarnation, broadcasts ``alive``, and
  rejoins through :meth:`FaultInjector.revive`.

Two deliberate modeling shortcuts, both deterministic: a cross-partition
peer is marked **PARTITIONED** rather than suspected (the injector's
partition schedule is used as ground truth — declaring half the machine
dead at every cut would make partition-tolerance untestable), and a DEAD
declaration updates all monitors' views directly instead of flooding a
``dead`` broadcast (the global ``declare_dead`` transition already is
common knowledge in this model).

Everything here is bound-method callbacks and slotted state objects —
no closures — so the whole detector checkpoint/restores bit-identically
inside the machine's snapshot pickle (see :mod:`repro.snapshot`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.machine.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from .inject import FaultInjector

__all__ = ["HeartbeatDetector", "HB_KIND", "SUSPECT_KIND", "ALIVE_KIND"]

HB_KIND = "fault.hb"
SUSPECT_KIND = "fault.suspect"
ALIVE_KIND = "fault.alive"

#: view states a monitor holds about a peer
ALIVE, SUSPECT, DEAD, PARTITIONED = "alive", "suspect", "dead", "partitioned"


class _PeerView:
    """One monitor's knowledge about one neighbor."""

    __slots__ = ("last", "status", "inc", "suspectors")

    def __init__(self) -> None:
        self.last = 0.0  # sim time of the last accepted heartbeat
        self.status = ALIVE
        self.inc = 0  # incarnation this view last accepted / suspected
        self.suspectors: dict[int, bool] = {}  # ranks known to suspect

    def clear_to_alive(self, now: float, inc: int) -> None:
        self.status = ALIVE
        self.last = now
        self.inc = inc
        self.suspectors.clear()


class HeartbeatDetector:
    """Deterministic heartbeat failure detection for one machine."""

    def __init__(self, injector: "FaultInjector") -> None:
        self.injector = injector
        machine = injector.machine
        self.machine = machine
        plan = injector.plan
        lat = machine.latency
        one_way = (lat.software_overhead
                   + max(1, machine.topology.diameter()) * lat.per_hop)
        self.period = (plan.heartbeat_period
                       if plan.heartbeat_period is not None else 8.0 * one_way)
        self.timeout = (plan.heartbeat_timeout
                        if plan.heartbeat_timeout is not None
                        else 3.0 * self.period)
        self.refute_delay = (plan.refute_delay
                             if plan.refute_delay is not None
                             else 2.0 * self.timeout)
        n = machine.num_nodes
        topo = machine.topology
        #: per-rank self-incarnation (bumped on every refutation)
        self.incarnation = [0] * n
        #: monitor -> {peer: view} over topology neighbors.  Views exist
        #: only between *current members*: standby nodes are silent by
        #: design and must not accumulate suspicion; joins/leaves edit
        #: these dicts through on_member_joined / on_member_left.
        is_member = injector.is_member
        self.views: list[dict[int, _PeerView]] = [
            {p: _PeerView() for p in topo.neighbors(r) if is_member(p)}
            if is_member(r) else {}
            for r in range(n)
        ]
        for node in machine.nodes:
            node.on(HB_KIND, self._on_heartbeat)
            node.on(SUSPECT_KIND, self._on_suspect)
            node.on(ALIVE_KIND, self._on_alive)
        #: set by :meth:`stop` when the workload finishes — the periodic
        #: beats stop re-arming, letting the event heap drain.
        self.stopped = False

    def start(self) -> None:
        """Arm the first heartbeat of every member (called once at
        attach; nodes admitted later are armed by on_member_joined)."""
        for node in self.machine.nodes:
            if self.injector.is_member(node.rank):
                node.after(self.period, self._beat, node.rank)

    def stop(self) -> None:
        """Stop monitoring (workload done): beats no longer re-arm."""
        self.stopped = True

    # ------------------------------------------------------------------
    # the periodic beat: send heartbeats, check deadlines
    # ------------------------------------------------------------------
    def _beat(self, rank: int) -> None:
        node = self.machine.nodes[rank]
        if (self.stopped or node.crashed or node.fenced
                or not self.injector.is_member(rank)):
            return  # chain dies; refute/rejoin (or nothing) re-arms it
        inc = self.incarnation[rank]
        for peer in self.machine.topology.neighbors(rank):
            node.send(peer, HB_KIND, inc)
        self._check(rank)
        node.after(self.period, self._beat, rank)

    def _check(self, rank: int) -> None:
        now = self.machine.sim.now
        inj = self.injector
        for peer, view in self.views[rank].items():
            if view.status == DEAD:
                continue
            if inj.cross_partition(rank, peer):
                if view.status != PARTITIONED:
                    view.status = PARTITIONED
                    view.suspectors.clear()
                    inj.note(rank, "hb-partitioned", args={"peer": peer})
                view.last = now  # freeze the deadline clock across the cut
                continue
            if view.status == PARTITIONED:
                # healed: grace-restart the deadline before re-judging
                view.clear_to_alive(now, view.inc)
                continue
            if now - view.last > self.timeout:
                if view.status == ALIVE:
                    view.status = SUSPECT
                    view.suspectors[rank] = True
                    inj.note(rank, "hb-suspect",
                             args={"peer": peer, "inc": view.inc})
                if view.status == SUSPECT:
                    # (re-)gossip each period while suspicion stands, so a
                    # dropped gossip message cannot wedge corroboration
                    self._gossip_suspicion(rank, peer, view.inc)
                    self._maybe_declare(rank, peer, view)

    def _gossip_suspicion(self, rank: int, peer: int, inc: int) -> None:
        node = self.machine.nodes[rank]
        is_member = self.injector.is_member
        for other in self.machine.topology.neighbors(peer):
            if other != rank and is_member(other):
                node.send(other, SUSPECT_KIND, (peer, inc))
        # the self-defense channel: tell the suspect itself
        node.send(peer, SUSPECT_KIND, (peer, inc))

    def _quorum(self, peer: int) -> int:
        monitors = [m for m in self.machine.topology.neighbors(peer)
                    if m not in self.injector.detected_dead
                    and self.injector.is_member(m)]
        return min(self.injector.plan.corroboration, max(1, len(monitors)))

    def _maybe_declare(self, rank: int, peer: int, view: _PeerView) -> None:
        if len(view.suspectors) >= self._quorum(peer):
            self.injector.note(rank, "hb-dead",
                               args={"peer": peer,
                                     "suspectors": sorted(view.suspectors)})
            self.injector.declare_dead(peer)

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    def _on_heartbeat(self, msg: Message) -> None:
        view = self.views[msg.dest].get(msg.src)
        if view is None:  # pragma: no cover - heartbeats are neighbor-only
            return
        inc = msg.payload
        if view.status == DEAD:
            if inc > view.inc:  # a revived node beats with a higher inc
                view.clear_to_alive(self.machine.sim.now, inc)
            return
        if view.status in (SUSPECT, PARTITIONED):
            self.injector.note(msg.dest, "hb-alive",
                               args={"peer": msg.src, "inc": inc})
        view.clear_to_alive(self.machine.sim.now, max(view.inc, inc))

    def _on_suspect(self, msg: Message) -> None:
        peer, inc = msg.payload
        rank = msg.dest
        if rank == peer:
            # someone suspects *me* and I am demonstrably alive: refute
            # with a higher incarnation (the SWIM refutation rule)
            if inc >= self.incarnation[rank]:
                self.incarnation[rank] = inc + 1
                self.injector.note(rank, "hb-refute",
                                   args={"inc": self.incarnation[rank]})
                self._broadcast_alive(rank)
            return
        view = self.views[rank].get(peer)
        if view is None or view.status in (DEAD, PARTITIONED):
            return
        # record the corroborating monitor; promotion still requires this
        # monitor's own deadline to have expired (status SUSPECT)
        view.suspectors[msg.src] = True
        if view.status == SUSPECT:
            self._maybe_declare(rank, peer, view)

    def _on_alive(self, msg: Message) -> None:
        peer, inc = msg.payload
        view = self.views[msg.dest].get(peer)
        if view is None:
            return
        if inc > view.inc or view.status == SUSPECT:
            if view.status in (SUSPECT, DEAD):
                self.injector.note(msg.dest, "hb-alive",
                                   args={"peer": peer, "inc": inc})
            view.clear_to_alive(self.machine.sim.now, inc)

    # ------------------------------------------------------------------
    # global transitions (driven by the injector)
    # ------------------------------------------------------------------
    def on_declared_dead(self, rank: int) -> None:
        """Propagate a DEAD declaration into every monitor's view."""
        for views in self.views:
            view = views.get(rank)
            if view is not None and view.status != DEAD:
                view.status = DEAD
                view.suspectors.clear()

    def on_refuted(self, rank: int) -> None:
        """A fenced-but-alive node's lease expired (or its stall ended):
        bump the incarnation, broadcast ``alive``, and re-arm its beat."""
        self.incarnation[rank] += 1
        now = self.machine.sim.now
        for view in self.views[rank].values():
            # it heard nothing while fenced; restart its deadline clocks
            view.clear_to_alive(now, view.inc)
        self.injector.note(rank, "hb-refute",
                           args={"inc": self.incarnation[rank]})
        self._broadcast_alive(rank)
        self.machine.nodes[rank].after(self.period, self._beat, rank)

    def on_member_joined(self, rank: int) -> None:
        """An admitted node enters monitoring: fresh views both ways,
        with deadline clocks starting *now* (its pre-join silence must
        not read as a missed heartbeat), and its beat chain armed."""
        now = self.machine.sim.now
        is_member = self.injector.is_member
        mine = self.views[rank]
        mine.clear()
        for peer in self.machine.topology.neighbors(rank):
            if not is_member(peer):
                continue
            view = _PeerView()
            view.last = now
            mine[peer] = view
            back = _PeerView()
            back.last = now
            self.views[peer][rank] = back
        self.machine.nodes[rank].after(self.period, self._beat, rank)

    def on_member_left(self, rank: int) -> None:
        """Garbage-collect every trace of a departed member.

        A departed node is dark by choice; leaving its views in place
        would turn it into a permanent SUSPECT ghost whose gossip keeps
        getting re-corroborated.  Its own views go, every monitor's view
        *of* it goes, and so does its entry in every suspectors set —
        a departed monitor's old vote must not count toward any quorum.
        """
        self.views[rank].clear()
        for views in self.views:
            views.pop(rank, None)
            for view in views.values():
                view.suspectors.pop(rank, None)

    def _broadcast_alive(self, rank: int) -> None:
        node = self.machine.nodes[rank]
        inc = self.incarnation[rank]
        for peer in self.machine.topology.neighbors(rank):
            node.send(peer, ALIVE_KIND, (rank, inc))
