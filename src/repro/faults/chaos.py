"""Seeded chaos testing: random fault plans, invariants, shrinking.

The chaos harness closes the loop on the fault model: instead of
hand-picked fault plans, it *generates* plans from a seed — crashes,
stalls, outages, partitions, wire-fault rates, always under the
heartbeat detector — runs each against RIPS, and checks the invariants
that must hold under **any** plan the generator can produce:

``termination``
    The run completes within a generous event budget (a livelocked
    retransmit storm or a wedged phase never drains the heap).
``conservation``
    Every generated task executes exactly once or is provably lost to a
    declared fail-stop crash (:func:`repro.faults.audit_session`).
``balance``
    At every system-phase end, planned quotas among the live ranks of
    the planning component differ by at most 1 (the MWA property; the
    RIPS runtime records the worst spread it ever planned).
``bounded-retransmits``
    No reliable envelope retries without bound: the worst per-message
    attempt count stays under the cap implied by finite outages plus
    capped exponential backoff.

When a case fails, :func:`shrink_plan` delta-debugs the plan down to a
minimal reproducer: scheduled faults (each crash / stall / outage /
partition) and each nonzero wire rate are the atoms, and ddmin finds a
small atom subset that still fails — typically one or two faults — to
re-run via ``python -m repro chaos --replay``.

Everything is deterministic: ``chaos --cases 50 --seed 0`` generates
and judges the same 50 plans on every machine, every time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from .audit import audit_session
from .plan import FaultPlan

__all__ = ["ChaosCase", "ChaosReport", "random_plan", "random_churn_plan",
           "run_case", "run_chaos", "shrink_plan", "MAX_ATTEMPTS_BOUND"]

#: default chaos target — small enough that 50 cases run in tens of
#: seconds, large enough for real protocol structure (4x4 mesh).
WORKLOAD = "queens-10"
NUM_NODES = 16
MACHINE_SEED = 7
SCALE = "small"

#: invariant bound on the reliable envelope's worst attempt count.
#: Outages and partitions last at most ~12 ms; with the default RTO and
#: capped backoff a survivor needs well under this many tries to cross
#: a healed cut.  A retransmit storm blows straight past it.
MAX_ATTEMPTS_BOUND = 64

#: hard event budget per case — the termination invariant.  Healthy
#: runs of the chaos target finish in well under 10% of this.
MAX_EVENTS = 4_000_000
_CHUNK = 250_000

_RATE_FIELDS = ("drop_rate", "duplicate_rate", "delay_rate", "reorder_rate")


# ---------------------------------------------------------------------------
# plan generation
# ---------------------------------------------------------------------------
def random_plan(rng: random.Random, num_nodes: int = NUM_NODES) -> FaultPlan:
    """Draw one fault plan from the chaos distribution.

    Always ``detector="heartbeat"`` (the oracle is exercised by the
    deterministic suite; chaos hunts the detection/fencing/rejoin
    paths).  Rank 0 never crashes — it holds the root workload seed, so
    crashing it makes every plan trivially "all tasks lost".  Stall
    windows are drawn long enough that some exceed the heartbeat
    timeout, which is exactly how false suspicions arise.
    """
    horizon = 0.020  # healthy fault-free run of the target is ~25 ms

    def when(lo: float = 0.002) -> float:
        return round(rng.uniform(lo, horizon), 6)

    crashes = tuple(
        (rank, when())
        for rank in rng.sample(range(1, num_nodes), rng.randint(0, 2))
    )
    stalls = tuple(
        (rng.randrange(num_nodes), when(0.001), round(rng.uniform(0.002, 0.02), 6))
        for _ in range(rng.randint(0, 2))
    )
    outages = []
    for _ in range(rng.randint(0, 2)):
        src = rng.randrange(num_nodes)
        dest = rng.randrange(num_nodes)
        if src == dest:
            dest = (dest + 1) % num_nodes
        outages.append((src, dest, when(0.001), round(rng.uniform(0.001, 0.008), 6)))
    partitions = ()
    if rng.random() < 0.5:
        # cut the default mesh into two contiguous halves (row-major
        # rank order, so halves are horizontal mesh bands)
        half = num_nodes // 2
        groups = (tuple(range(half)), tuple(range(half, num_nodes)))
        partitions = ((when(0.002), round(rng.uniform(0.004, 0.012), 6), groups),)
    return FaultPlan(
        seed=rng.randrange(1 << 30),
        detector="heartbeat",
        drop_rate=rng.choice((0.0, 0.005, 0.02)),
        duplicate_rate=rng.choice((0.0, 0.01)),
        delay_rate=rng.choice((0.0, 0.01)),
        crashes=crashes,
        stalls=stalls,
        outages=tuple(outages),
        partitions=partitions,
    )


def random_churn_plan(rng: random.Random,
                      num_nodes: int = NUM_NODES) -> FaultPlan:
    """Draw one *elastic-membership* plan from the churn distribution.

    Every plan exercises the join handshake (1-3 standby ranks with
    scheduled joins), most also drain members out (0-2 leaves) and rotate
    the root (0-2 elections); a minority adds a fail-stop crash and mild
    message drops on top, so epoch transitions race real failures and
    detector traffic.  Rank 0 is never standby (plan validation), never
    leaves, and never crashes — it holds the root workload seed.
    """
    horizon = 0.020

    def when(lo: float = 0.002) -> float:
        return round(rng.uniform(lo, horizon), 6)

    ranks = list(range(1, num_nodes))
    standby = tuple(sorted(rng.sample(ranks, rng.randint(1, 3))))
    joins = tuple((r, when()) for r in standby)
    remaining = [r for r in ranks if r not in standby]
    leaves = tuple(
        (r, when()) for r in rng.sample(remaining, rng.randint(0, 2)))
    elections = tuple(sorted(when() for _ in range(rng.randint(0, 2))))
    leaving = {r for r, _ in leaves}
    crashable = [r for r in remaining if r not in leaving]
    crashes = tuple(
        (r, when()) for r in rng.sample(crashable, rng.randint(0, 1)))
    return FaultPlan(
        seed=rng.randrange(1 << 30),
        detector="heartbeat",
        drop_rate=rng.choice((0.0, 0.0, 0.005)),
        standby=standby,
        joins=joins,
        leaves=leaves,
        elections=elections,
        crashes=crashes,
    )


# ---------------------------------------------------------------------------
# case execution + invariants
# ---------------------------------------------------------------------------
@dataclass
class ChaosCase:
    """Verdict for one generated plan."""

    index: int
    plan: FaultPlan
    violations: list[str] = field(default_factory=list)
    sim_time: float = 0.0
    events: int = 0
    detail: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAIL " + ",".join(
            v.split(":", 1)[0] for v in self.violations)
        return (f"case {self.index:3d}  {self.plan.describe():<44s} "
                f"T={self.sim_time * 1e3:6.2f}ms  {verdict}")


def run_case(
    plan: FaultPlan,
    *,
    index: int = 0,
    workload: str = WORKLOAD,
    num_nodes: int = NUM_NODES,
    seed: int = MACHINE_SEED,
    max_events: int = MAX_EVENTS,
    mutate: Optional[Callable] = None,
) -> ChaosCase:
    """Run one plan against RIPS and check every invariant.

    ``mutate(session)`` — applied after wiring, before the run — is the
    breakage hook the test suite uses to verify the harness *catches*
    a sabotaged injector; production callers leave it None.
    """
    from repro.session import Session

    case = ChaosCase(index=index, plan=plan)
    sess = Session(workload, strategy="RIPS", num_nodes=num_nodes,
                   seed=seed, scale=SCALE, faults=plan, trace=True)
    sess.prepare()
    if mutate is not None:
        mutate(sess)
    metrics = None
    spent = 0
    while spent < max_events:
        metrics = sess.run(max_events=_CHUNK)
        spent += _CHUNK
        if metrics is not None:
            break
    case.events = spent
    case.sim_time = sess.machine.sim.now
    if metrics is None:
        case.violations.append(
            f"termination: not finished after {spent:,} events "
            f"(sim time {case.sim_time * 1e3:.2f} ms)")
        return case  # nothing downstream is meaningful on a hung run

    audit = audit_session(sess, metrics)
    if not audit.ok:
        case.violations.append(f"conservation: {audit.summary()}")
    spread = metrics.extra.get("max_quota_spread", 0)
    case.detail["max_quota_spread"] = spread
    if spread > 1:
        case.violations.append(
            f"balance: planned quota spread {spread} > 1 at a phase end")
    counts = sess.machine.faults.counts if sess.machine.faults else {}
    attempts = counts.get("max_attempts", 1)
    case.detail["max_attempts"] = attempts
    if attempts > MAX_ATTEMPTS_BOUND:
        case.violations.append(
            f"bounded-retransmits: worst attempt count {attempts} "
            f"> {MAX_ATTEMPTS_BOUND}")
    if plan.has_membership():
        _check_epoch_invariants(case, plan,
                                metrics.extra.get("membership") or {},
                                num_nodes)
    case.detail["lost"] = len(metrics.extra.get("lost_task_ids", ()))
    case.detail["rejoined"] = list(metrics.extra.get("rejoined_nodes", ()))
    return case


#: a membership event scheduled this close to the end of the run may
#: legitimately still be mid-handshake when the workload finishes.
_EPOCH_COMMIT_SLACK = 0.005


def _check_epoch_invariants(case: ChaosCase, plan: FaultPlan,
                            membership: dict, num_nodes: int) -> None:
    """The elastic-membership invariants, checked per committed epoch.

    ``epoch-conservation``
        Every join / leave / election commit carries ``lost_delta == 0``:
        voluntary membership changes never lose (or duplicate) a task.
    ``epoch-order``
        Committed epochs are numbered 1..N with no gaps — transitions
        serialize through the manager.
    ``epoch-commit``
        Every scheduled join/leave whose start time leaves enough runway
        before the manager stopped (= the workload finished) has
        actually committed (a wedged handshake shows up here, not as a
        hang), and at least as many elections committed as had runway.
    ``epoch-members``
        The final member set is exactly the arithmetic of the commits:
        initial members + joins - leaves.
    """
    transitions = membership.get("transitions", [])
    case.detail["epochs"] = membership.get("epoch", 0)
    bad = [t for t in transitions
           if t["kind"] in ("join", "leave", "election")
           and t["lost_delta"] != 0]
    if bad:
        where = ", ".join(
            f"epoch {t['epoch']} ({t['kind']} rank {t['rank']}): "
            f"delta {t['lost_delta']}" for t in bad)
        case.violations.append(f"epoch-conservation: {where}")
    epochs = [t["epoch"] for t in transitions]
    if epochs != list(range(1, len(epochs) + 1)):
        case.violations.append(f"epoch-order: committed epochs {epochs}")
    committed: dict[str, int] = {}
    for t in transitions:
        committed[t["kind"]] = committed.get(t["kind"], 0) + 1
    stopped_at = membership.get("stopped_at")
    horizon = stopped_at if stopped_at is not None else case.sim_time
    deadline = horizon - _EPOCH_COMMIT_SLACK
    for kind, scheduled in (("join", plan.joins), ("leave", plan.leaves)):
        due = sum(1 for _r, when in scheduled if when <= deadline)
        got = committed.get(kind, 0)
        if got < due or got > len(scheduled):
            case.violations.append(
                f"epoch-commit: {got} {kind}s committed, "
                f"expected {due}..{len(scheduled)}")
    elections_due = sum(1 for when in plan.elections if when <= deadline)
    if committed.get("election", 0) < elections_due:
        case.violations.append(
            f"epoch-commit: {committed.get('election', 0)} elections "
            f"committed, expected >= {elections_due}")
    want_members = (num_nodes - len(plan.standby)
                    + committed.get("join", 0) - committed.get("leave", 0))
    got_members = len(membership.get("members", ()))
    if got_members != want_members:
        case.violations.append(
            f"epoch-members: {got_members} final members, "
            f"commit arithmetic says {want_members}")


# ---------------------------------------------------------------------------
# shrinking (ddmin over fault atoms)
# ---------------------------------------------------------------------------
def _atoms(plan: FaultPlan) -> list[tuple[str, object]]:
    """Decompose a plan into independently removable fault atoms.

    A scheduled join and its standby listing are one atom (a join without
    the standby entry is invalid, a standby entry without the join is a
    different plan); standby ranks with no scheduled join are their own
    atoms, as are leaves and elections.
    """
    out: list[tuple[str, object]] = []
    out += [("crashes", c) for c in plan.crashes]
    out += [("stalls", s) for s in plan.stalls]
    out += [("outages", o) for o in plan.outages]
    out += [("partitions", p) for p in plan.partitions]
    joined = {r for r, _ in plan.joins}
    out += [("joins", j) for j in plan.joins]
    out += [("standby", r) for r in plan.standby if r not in joined]
    out += [("leaves", lv) for lv in plan.leaves]
    out += [("elections", e) for e in plan.elections]
    out += [("rate", name) for name in _RATE_FIELDS if getattr(plan, name)]
    return out


def _build(plan: FaultPlan, atoms: list[tuple[str, object]]) -> FaultPlan:
    """The sub-plan containing exactly ``atoms`` (order preserved)."""
    kept: dict[str, list] = {k: [] for k in
                             ("crashes", "stalls", "outages", "partitions",
                              "joins", "standby", "leaves", "elections")}
    rates = {name: 0.0 for name in _RATE_FIELDS}
    for kind, value in atoms:
        if kind == "rate":
            rates[value] = getattr(plan, value)
        else:
            kept[kind].append(value)
    # a kept join keeps its standby listing (in the plan's original order)
    standby_set = set(kept["standby"]) | {r for r, _ in kept["joins"]}
    kept["standby"] = [r for r in plan.standby if r in standby_set]
    return replace(plan, **{k: tuple(v) for k, v in kept.items()}, **rates)


def scheduled_fault_count(plan: FaultPlan) -> int:
    return (len(plan.crashes) + len(plan.stalls)
            + len(plan.outages) + len(plan.partitions)
            + len(plan.joins) + len(plan.leaves) + len(plan.elections))


def shrink_plan(
    plan: FaultPlan,
    fails: Callable[[FaultPlan], bool],
    budget: int = 64,
) -> tuple[FaultPlan, int]:
    """Minimize ``plan`` while ``fails`` keeps holding (classic ddmin).

    ``fails(sub_plan) -> bool`` judges a candidate (True = still
    reproduces the failure).  Evaluations are memoized on the canonical
    form and capped at ``budget``; returns ``(smallest failing plan
    found, evaluations spent)``.  The full plan must itself fail.
    """
    cache: dict[str, bool] = {}
    spent = 0

    def test(atoms: list[tuple[str, object]]) -> bool:
        nonlocal spent
        candidate = _build(plan, atoms)
        key = repr(sorted(candidate.canonical().items(), key=repr))
        if key in cache:
            return cache[key]
        if spent >= budget:
            return False  # out of budget: treat as "did not reproduce"
        spent += 1
        verdict = bool(fails(candidate))
        cache[key] = verdict
        return verdict

    atoms = _atoms(plan)
    if not test(atoms):
        raise ValueError("shrink_plan: the full plan does not fail")
    n = 2
    while len(atoms) >= 2 and spent < budget:
        chunk = max(1, len(atoms) // n)
        subsets = [atoms[i:i + chunk] for i in range(0, len(atoms), chunk)]
        reduced = False
        for subset in subsets:  # try each chunk alone
            if len(subset) < len(atoms) and test(subset):
                atoms, n, reduced = subset, 2, True
                break
        if not reduced:
            for subset in subsets:  # try each complement
                rest = [a for a in atoms if a not in subset]
                if 0 < len(rest) < len(atoms) and test(rest):
                    atoms, reduced = rest, True
                    n = max(n - 1, 2)
                    break
        if not reduced:
            if n >= len(atoms):
                break
            n = min(len(atoms), n * 2)
    return _build(plan, atoms), spent


# ---------------------------------------------------------------------------
# the campaign
# ---------------------------------------------------------------------------
@dataclass
class ChaosReport:
    """Outcome of one chaos campaign."""

    seed: int
    cases: list[ChaosCase] = field(default_factory=list)
    #: minimal reproducers for the failing cases, parallel to
    #: ``failures()`` — each is (case_index, shrunk_plan, evals_spent).
    reproducers: list[tuple[int, FaultPlan, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases)

    def failures(self) -> list[ChaosCase]:
        return [c for c in self.cases if not c.ok]


def run_chaos(
    cases: int = 20,
    seed: int = 0,
    *,
    num_nodes: int = NUM_NODES,
    churn: bool = False,
    shrink: bool = True,
    shrink_budget: int = 64,
    mutate: Optional[Callable] = None,
    progress: Optional[Callable[[ChaosCase], None]] = None,
) -> ChaosReport:
    """Generate and judge ``cases`` plans; shrink whatever fails.

    ``churn=True`` draws from the elastic-membership distribution
    (:func:`random_churn_plan`) instead of the crash/partition one; the
    epoch invariants then judge every case on top of the base four.
    """
    generate = random_churn_plan if churn else random_plan
    report = ChaosReport(seed=seed)
    for i in range(cases):
        # one independent stream per case: stable under reordering and
        # under --cases growth (case i is the same plan at any count)
        rng = random.Random((seed << 20) ^ i)
        plan = generate(rng, num_nodes)
        case = run_case(plan, index=i, num_nodes=num_nodes, mutate=mutate)
        report.cases.append(case)
        if progress is not None:
            progress(case)
        if not case.ok and shrink:
            def fails(candidate: FaultPlan) -> bool:
                return not run_case(candidate, index=i, num_nodes=num_nodes,
                                    mutate=mutate).ok

            shrunk, spent = shrink_plan(plan, fails, budget=shrink_budget)
            report.reproducers.append((i, shrunk, spent))
    return report
