"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, hashable description of every
perturbation a run will experience: message-level faults (drop /
duplicate / delay / reorder, filterable per message kind and per directed
link), transient link outages, node stall windows, and fail-stop crashes
at scheduled sim times.  The plan carries its own ``seed``; all random
draws come from one ``random.Random(seed)`` consumed in event order, so a
given (plan, workload, machine-seed) triple is bit-identical no matter
where or how often it runs — including across the process-pool executor.

The plan is pure data (stdlib only, no machine imports): it serializes
into the runner's canonical request JSON and travels through the result
cache and process pool unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional

__all__ = ["FaultPlan", "NULL_PLAN"]


def _freeze(value):
    """Recursively convert lists to tuples so the plan stays hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class FaultPlan:
    """What goes wrong, when, and with which seed.

    Rates are per-transmission probabilities in ``[0, 1]``; times are
    simulated seconds.  ``kinds``/``links`` restrict the *probabilistic*
    wire faults (drop/duplicate/delay/reorder) to matching messages;
    outages, stalls, and crashes are always scheduled as given.
    """

    #: seed for the fault RNG (independent of the machine RNG).
    seed: int = 0

    # -- probabilistic wire faults ------------------------------------
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    #: extra latency drawn uniformly from (0, delay_max] for delayed messages.
    delay_max: float = 1e-3
    reorder_rate: float = 0.0
    #: reorder jitter window; None derives ~4 network traversals at install.
    reorder_window: Optional[float] = None
    #: restrict wire faults to these message kinds (None = all kinds).
    kinds: Optional[tuple[str, ...]] = None
    #: restrict wire faults to these directed (src, dest) links (None = all).
    links: Optional[tuple[tuple[int, int], ...]] = None

    # -- scheduled faults ---------------------------------------------
    #: transient directed-link outages: (src, dest, start, duration).
    outages: tuple[tuple[int, int, float, float], ...] = ()
    #: node stall windows: (rank, start, duration) — CPU held, nothing lost.
    stalls: tuple[tuple[int, float, float], ...] = ()
    #: fail-stop crashes: (rank, time).  Fatal and permanent.
    crashes: tuple[tuple[int, float], ...] = ()
    #: scheduled mesh partitions: (start, duration, components) where
    #: ``components`` is a tuple of disjoint rank groups.  While a cut is
    #: active every message between different groups is dropped on the
    #: wire (reliable senders keep retransmitting until the heal).  Ranks
    #: not named in any group form one implicit "rest" component.
    partitions: tuple[tuple[float, float, tuple[tuple[int, ...], ...]], ...] = ()

    # -- elastic membership -------------------------------------------
    #: ranks that start *outside* the member set (powered but idle: they
    #: carry no tasks and exchange only membership-protocol traffic until
    #: admitted).  Rank 0 must start as a member.
    standby: tuple[int, ...] = ()
    #: scheduled scale-up events: (rank, time) — the standby rank starts
    #: the advertise/claim handshake at ``time`` and becomes a member at
    #: the resulting epoch commit.
    joins: tuple[tuple[int, float], ...] = ()
    #: scheduled scale-down events: (rank, time) — the member drains
    #: (hands every held/queued/pinned task off), then departs; a
    #: departing node is *not* a death and must declare zero losses.
    leaves: tuple[tuple[int, float], ...] = ()
    #: scheduled root elections (sim times).  Each election is
    #: incarnation-numbered and quorum-acknowledged; the committed root
    #: rotates deterministically through the sorted member set.
    elections: tuple[float, ...] = ()

    # -- failure detection --------------------------------------------
    #: ``"oracle"``: survivors learn of each crash ``detect_delay`` after
    #: it, globally and infallibly (the pre-detector behavior).
    #: ``"heartbeat"``: in-protocol detection — mesh neighbors exchange
    #: heartbeats, missed deadlines raise SUSPECT, gossip corroboration
    #: promotes to DEAD, and incarnation numbers let a falsely-declared
    #: node refute and rejoin (false positives are possible).
    detector: str = "oracle"
    #: failure-detector latency: survivors learn of a crash this long after it.
    detect_delay: float = 2e-3
    #: heartbeat period; None derives ~8 one-way mesh traversals at install.
    heartbeat_period: Optional[float] = None
    #: silence before a monitor suspects a peer; None derives 3 periods.
    heartbeat_timeout: Optional[float] = None
    #: distinct suspecting monitors needed to promote SUSPECT -> DEAD
    #: (clamped to the peer's monitor count at install).
    corroboration: int = 2
    #: lease after a false death declaration before the fenced node
    #: re-checks, refutes with a higher incarnation, and rejoins; None
    #: derives 2 heartbeat timeouts.
    refute_delay: Optional[float] = None

    # -- reliable-envelope tuning -------------------------------------
    #: initial retransmit timeout; None derives one from the latency model.
    rto: Optional[float] = None
    #: exponential backoff cap: rto * 2**min(attempts, this).
    max_backoff_doublings: int = 6

    def __post_init__(self) -> None:
        for name in ("kinds", "links", "outages", "stalls", "crashes",
                     "partitions", "standby", "joins", "leaves", "elections"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, _freeze(value))
        for name in ("drop_rate", "duplicate_rate", "delay_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if len({r for r, _ in self.crashes}) != len(self.crashes):
            raise ValueError("at most one crash per rank")
        if self.detector not in ("oracle", "heartbeat"):
            raise ValueError(
                f"detector must be 'oracle' or 'heartbeat', got {self.detector!r}")
        if self.corroboration < 1:
            raise ValueError("corroboration must be >= 1")
        for start, duration, components in self.partitions:
            if duration <= 0:
                raise ValueError("partition duration must be > 0")
            named: set[int] = set()
            for group in components:
                if named & set(group):
                    raise ValueError("partition components must be disjoint")
                named |= set(group)
        if 0 in self.standby:
            raise ValueError("rank 0 must start as a member")
        if len(set(self.standby)) != len(self.standby):
            raise ValueError("duplicate standby ranks")
        if len({r for r, _ in self.joins}) != len(self.joins):
            raise ValueError("at most one scheduled join per rank")
        if len({r for r, _ in self.leaves}) != len(self.leaves):
            raise ValueError("at most one scheduled leave per rank")
        standby = set(self.standby)
        for rank, _when in self.joins:
            if rank not in standby:
                raise ValueError(
                    f"join of rank {rank} requires it in standby")
        crashed = {r for r, _ in self.crashes}
        for rank, _when in self.leaves:
            if rank in standby:
                raise ValueError(f"leave of rank {rank}: not a member")
            if rank in crashed:
                raise ValueError(
                    f"rank {rank} cannot both crash and leave gracefully")

    # ------------------------------------------------------------------
    def is_null(self) -> bool:
        """True when the plan injects nothing at all.

        A heartbeat-detector plan is never null even without scheduled
        faults: the detector itself adds real protocol traffic.
        """
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.delay_rate == 0.0
            and self.reorder_rate == 0.0
            and not self.outages
            and not self.stalls
            and not self.crashes
            and not self.partitions
            and not self.has_membership()
            and self.detector == "oracle"
        )

    def has_membership(self) -> bool:
        """True when the plan changes the member set at runtime (or
        starts with standby ranks / schedules elections)."""
        return bool(self.standby or self.joins or self.leaves
                    or self.elections)

    def describe(self) -> str:
        """Short human label, e.g. ``"drop 1%"`` or ``"crash x1"`` —
        what the fault-sweep tables print in their *faults* column."""
        if self.is_null():
            return "fault-free"
        parts = []
        for name, label in (("drop_rate", "drop"), ("duplicate_rate", "dup"),
                            ("delay_rate", "delay"), ("reorder_rate", "reorder")):
            rate = getattr(self, name)
            if rate:
                parts.append(f"{label} {100 * rate:.4g}%")
        if self.outages:
            parts.append(f"outage x{len(self.outages)}")
        if self.stalls:
            parts.append(f"stall x{len(self.stalls)}")
        if self.crashes:
            parts.append(f"crash x{len(self.crashes)}")
        if self.partitions:
            parts.append(f"partition x{len(self.partitions)}")
        if self.joins:
            parts.append(f"join x{len(self.joins)}")
        if self.leaves:
            parts.append(f"leave x{len(self.leaves)}")
        if self.elections:
            parts.append(f"elect x{len(self.elections)}")
        if self.detector != "oracle":
            parts.append(f"{self.detector}-detect")
        return "+".join(parts)

    def canonical(self) -> dict[str, Any]:
        """Deterministic JSON-ready form (non-default fields only), used
        by the runner's request canonicalization / cache keys."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_canonical(cls, data: dict[str, Any]) -> "FaultPlan":
        return cls(**data)

    # -- convenience constructors for the common sweeps ----------------
    @classmethod
    def lossy(cls, drop_rate: float, seed: int = 0, **kw) -> "FaultPlan":
        return cls(seed=seed, drop_rate=drop_rate, **kw)

    @classmethod
    def fail_stop(cls, crashes, seed: int = 0, **kw) -> "FaultPlan":
        return cls(seed=seed, crashes=tuple(crashes), **kw)

    @classmethod
    def partitioned(cls, partitions, seed: int = 0, **kw) -> "FaultPlan":
        return cls(seed=seed, partitions=tuple(partitions), **kw)

    @classmethod
    def elastic(cls, standby=(), joins=(), leaves=(), elections=(),
                seed: int = 0, **kw) -> "FaultPlan":
        """An elastic-membership plan (runtime join/leave/election)."""
        return cls(seed=seed, standby=tuple(standby), joins=tuple(joins),
                   leaves=tuple(leaves), elections=tuple(elections), **kw)


#: Shared do-nothing plan; ``Machine.attach_faults`` treats it like None.
NULL_PLAN = FaultPlan()
