"""Deterministic fault injection for the simulated machine.

``Machine.attach_faults(plan)`` installs a :class:`FaultInjector`: it
wraps the network's ``transmit`` with probabilistic wire faults, link
outages, and scheduled mesh partitions, schedules stall windows and
fail-stop crashes as sim events, and owns the
:class:`~repro.faults.transport.ReliableTransport` that
``Node.send(reliable=True)`` routes through.  With
``plan.detector="heartbeat"`` it additionally runs the in-protocol
:class:`~repro.faults.detector.HeartbeatDetector`, whose (possibly
false) death declarations funnel through :meth:`declare_dead` /
:meth:`revive` here.

All randomness comes from one ``random.Random(plan.seed)`` consumed in
event order, so identical (plan, machine) seeds replay bit-identically —
serial, parallel, or across processes.  A null plan installs nothing;
the fault-free machine never even sees these code paths.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Optional

from repro.machine.message import Message

from .plan import FaultPlan
from .transport import ACK_KIND, ReliableTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine
    from repro.machine.node import Node

__all__ = ["FaultInjector", "FaultyNetwork"]


class _EnvelopeDelivery:
    """Receiver CPU callback for one classified reliable message.

    A named, slotted callable (rather than a closure) so that the node
    CPU queue and event heap stay picklable — a requirement of
    :mod:`repro.snapshot`'s checkpoint/restore.
    """

    __slots__ = ("transport", "entry", "handler")

    def __init__(self, transport, entry, handler) -> None:
        self.transport = transport
        self.entry = entry
        self.handler = handler

    def __call__(self, msg: Message) -> None:
        self.transport.deliver(self.entry, self.handler, msg)


class FaultyNetwork:
    """Transmit-side wrapper installed over the machine's real network."""

    def __init__(self, inner, injector: "FaultInjector") -> None:
        self.inner = inner
        self.injector = injector
        self.sim = inner.sim
        self.topology = inner.topology
        self.latency = inner.latency

    @property
    def stats(self):
        return self.inner.stats

    @property
    def tracer(self):
        return self.inner.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.inner.tracer = value

    def transmit(self, msg: Message, tasks_carried: int = 0) -> None:
        if msg.src == msg.dest:  # loopback never touches a wire
            self.inner.transmit(msg, tasks_carried)
            return
        inj = self.injector
        action, extra = inj.wire_verdict(msg)
        if action is None:
            self.inner.transmit(msg, tasks_carried)
            return
        if action == "drop":
            if extra == "outage":
                key = "outage_drops"
            elif extra == "partition":
                key = "partition_drops"
            else:
                key = "drops"
            inj.count(key, msg.src)
            inj.note(msg.src, f"net-{key[:-1]}", msg)
            return
        if action == "dup":
            inj.count("duplicates", msg.src)
            inj.note(msg.src, "net-duplicate", msg)
            self.inner.transmit(msg, tasks_carried)
            self.inner.transmit(msg, tasks_carried)
            return
        # "delay" (also used for reorder: enough jitter to overtake peers)
        inj.count("delays", msg.src)
        inj.note(msg.src, "net-delay", msg)
        self.sim.schedule(extra, self.inner.transmit, msg, tasks_carried)


class FaultInjector:
    """Owns all fault state for one machine.  Built by ``attach_faults``."""

    def __init__(self, machine: "Machine", plan: FaultPlan) -> None:
        self.machine = machine
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.transport = ReliableTransport(
            machine, plan.rto, plan.max_backoff_doublings)
        #: ranks currently declared dead by the failure detector (a false
        #: positive leaves this set again when the node refutes).
        self.detected_dead: set[int] = set()
        self._crash_callbacks: list[Callable[[int], None]] = []
        self._rejoin_callbacks: list[Callable[[int], None]] = []
        self._membership_callbacks: list[Callable[[str], None]] = []
        self._joined_callbacks: list[Callable[[int], None]] = []
        self._departing_callbacks: list[Callable[[int], int]] = []
        self._undelivered: dict[int, list[tuple[Message, int]]] = {}
        self.counts: dict[str, int] = {
            "drops": 0, "outage_drops": 0, "duplicates": 0, "delays": 0,
            "crashes": 0, "stalls": 0, "blackholed": 0, "dups_suppressed": 0,
        }
        #: ranks that were falsely declared dead and later rejoined.
        self.rejoined: list[int] = []
        #: rich observability: new-in-PR-5 counter/instant emission, only
        #: for plans that use the new fault surface (heartbeat detection
        #: or partitions) — plans that existed before stay bit-identical.
        self.obs_rich = (plan.detector != "oracle" or bool(plan.partitions)
                         or plan.has_membership())
        self._kinds = frozenset(plan.kinds) if plan.kinds else None
        self._links = frozenset(plan.links) if plan.links else None
        lat = machine.latency
        diameter = max(1, machine.topology.diameter())
        self.reorder_window = (
            plan.reorder_window if plan.reorder_window is not None
            else 4.0 * (lat.software_overhead + diameter * lat.per_hop))
        machine.network = FaultyNetwork(machine.network, self)
        sim = machine.sim
        for rank, t in plan.crashes:
            machine.topology.check_rank(rank)
            sim.schedule_at(t, self._crash, rank)
        for rank, start, duration in plan.stalls:
            machine.topology.check_rank(rank)
            sim.schedule_at(start, self._stall_begin, rank)
            sim.schedule_at(start + duration, self._stall_end, rank)
        # -- scheduled mesh partitions ---------------------------------
        #: active cut index -> its component groups (insertion-ordered).
        self._active_cuts: dict[int, tuple[tuple[int, ...], ...]] = {}
        #: per-rank component label vector while any cut is active.
        self._comp_label: Optional[list[tuple[int, ...]]] = None
        for idx, (start, duration, components) in enumerate(plan.partitions):
            for group in components:
                for r in group:
                    machine.topology.check_rank(r)
            sim.schedule_at(start, self._partition_begin, idx)
            sim.schedule_at(start + duration, self._partition_end, idx)
        # -- elastic membership ----------------------------------------
        #: MembershipManager when the plan scales the member set at
        #: runtime; None keeps every fixed-membership plan on the exact
        #: pre-membership code paths (bit-identity).
        self.membership = None
        if plan.has_membership():
            from repro.membership import MembershipManager

            self.membership = MembershipManager(self)
        # -- failure detector ------------------------------------------
        self.detector = None
        if plan.detector == "heartbeat":
            from .detector import HeartbeatDetector

            self.detector = HeartbeatDetector(self)
            self.detector.start()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def note(self, node: int, name: str, msg: Optional[Message] = None,
             args: Optional[dict] = None) -> None:
        tr = self.machine.tracer
        if tr is None:
            return
        if msg is not None:
            args = {"kind": msg.kind, "src": msg.src, "dest": msg.dest,
                    **(args or {})}
        tr.instant(node, "fault", name, self.machine.sim.now, args)

    def count(self, name: str, node: int = 0) -> None:
        """Bump ``counts[name]`` (creating it lazily) and — for obs-rich
        plans — emit the running value as a tracer counter record, so
        the fault timeline shows up alongside the phase spans."""
        c = self.counts
        value = c.get(name, 0) + 1
        c[name] = value
        if self.obs_rich:
            tr = self.machine.tracer
            if tr is not None:
                tr.counter(node, "fault", name, self.machine.sim.now, value)

    def stats_summary(self) -> dict:
        """Picklable fault/recovery counters for ``RunMetrics.extra``."""
        out = {
            **self.counts,
            "retransmits": self.transport.retransmits,
            "acks": self.transport.acks,
            "detected_dead": sorted(self.detected_dead),
        }
        if self.obs_rich:
            out["max_attempts"] = self.transport.max_attempts
            out["rejoined"] = list(self.rejoined)
        if self.membership is not None:
            out["membership"] = self.membership.summary()
        return out

    # ------------------------------------------------------------------
    # wire faults
    # ------------------------------------------------------------------
    def wire_verdict(self, msg: Message):
        """Decide the fate of one transmission.

        Draw order is fixed and rate-gated (a zero rate consumes no
        randomness), which is what keeps plans with different knobs from
        perturbing each other's streams.  Partition and outage checks
        consume no randomness at all.
        """
        lab = self._comp_label
        if lab is not None and lab[msg.src] != lab[msg.dest]:
            return "drop", "partition"
        plan = self.plan
        now = self.machine.sim.now
        for src, dest, start, duration in plan.outages:
            if (src == msg.src and dest == msg.dest
                    and start <= now < start + duration):
                return "drop", "outage"
        if self._kinds is not None and msg.kind not in self._kinds:
            return None, None
        if self._links is not None and (msg.src, msg.dest) not in self._links:
            return None, None
        rng = self.rng
        if plan.drop_rate and rng.random() < plan.drop_rate:
            return "drop", "random"
        if plan.duplicate_rate and rng.random() < plan.duplicate_rate:
            return "dup", None
        if plan.delay_rate and rng.random() < plan.delay_rate:
            return "delay", rng.uniform(0.0, plan.delay_max)
        if plan.reorder_rate and rng.random() < plan.reorder_rate:
            return "delay", rng.uniform(0.0, self.reorder_window)
        return None, None

    # ------------------------------------------------------------------
    # dispatch interception (receiver side)
    # ------------------------------------------------------------------
    def intercept_dispatch(self, node: "Node", msg: Message, handler):
        """Veto or wrap an arriving message's handler (see Node.dispatch)."""
        if node.crashed or node.fenced:
            self.count("blackholed", node.rank)
            return None
        if msg.kind == ACK_KIND:
            # envelope control traffic: processed immediately, no CPU
            # charge — an ack stuck behind a busy CPU would race its own
            # retransmit timer
            self.transport._on_ack(msg)
            return None
        verdict = self.transport.classify_arrival(node, msg)
        if verdict is None:
            return handler
        if verdict is False:
            self.count("dups_suppressed", node.rank)
            return None
        return _EnvelopeDelivery(self.transport, verdict, handler)

    # ------------------------------------------------------------------
    # mesh partitions
    # ------------------------------------------------------------------
    def reachable(self, a: int, b: int) -> bool:
        """False while an active cut separates ranks ``a`` and ``b``."""
        lab = self._comp_label
        return lab is None or lab[a] == lab[b]

    def cross_partition(self, a: int, b: int) -> bool:
        return not self.reachable(a, b)

    def components(self) -> list[list[int]]:
        """Current reachability components as ascending rank lists,
        ordered by their smallest member (one full-machine component
        when no cut is active)."""
        n = self.machine.num_nodes
        lab = self._comp_label
        if lab is None:
            return [list(range(n))]
        groups: dict[tuple[int, ...], list[int]] = {}
        for r in range(n):
            groups.setdefault(lab[r], []).append(r)
        return sorted(groups.values())

    def on_membership_changed(self, callback: Callable[[str], None]) -> None:
        """Register a callback fired with ``"partition"`` / ``"heal"``
        whenever the reachability components change; the callee queries
        :meth:`components` for the new shape."""
        self._membership_callbacks.append(callback)

    def _recompute_components(self) -> None:
        if not self._active_cuts:
            self._comp_label = None
            return
        n = self.machine.num_nodes
        labels: list[tuple[int, ...]] = []
        for r in range(n):
            lab = []
            for components in self._active_cuts.values():
                g_of = -1
                for gi, group in enumerate(components):
                    if r in group:
                        g_of = gi
                        break
                lab.append(g_of)
            labels.append(tuple(lab))
        self._comp_label = labels

    def _partition_begin(self, idx: int) -> None:
        _s, _d, components = self.plan.partitions[idx]
        self._active_cuts[idx] = components
        self._recompute_components()
        self.count("partitions")
        self.note(0, "partition-begin",
                  args={"cut": idx,
                        "components": [list(g) for g in components]})
        for cb in self._membership_callbacks:
            cb("partition")

    def _partition_end(self, idx: int) -> None:
        self._active_cuts.pop(idx, None)
        self._recompute_components()
        self.note(0, "partition-heal", args={"cut": idx})
        for cb in self._membership_callbacks:
            cb("heal")

    # ------------------------------------------------------------------
    # crashes, stalls, and (possibly false) death declarations
    # ------------------------------------------------------------------
    def on_crash_detected(self, callback: Callable[[int], None]) -> None:
        """Register a failure-detector callback (fires per declared-dead
        rank: after ``detect_delay`` under the oracle, at gossip-quorum
        time under the heartbeat detector)."""
        self._crash_callbacks.append(callback)

    def on_node_rejoined(self, callback: Callable[[int], None]) -> None:
        """Register a callback fired when a falsely-declared-dead node
        refutes the declaration and rejoins."""
        self._rejoin_callbacks.append(callback)

    # -- elastic membership -------------------------------------------
    def is_member(self, rank: int) -> bool:
        """True when ``rank`` is in the current membership epoch (always
        true on fixed-membership plans)."""
        return self.membership is None or self.membership.is_member(rank)

    def on_node_joined(self, callback: Callable[[int], None]) -> None:
        """Register a callback fired when a node is admitted to the
        member set (at the join epoch commit, before any task can be
        scheduled onto it)."""
        self._joined_callbacks.append(callback)

    def on_node_departing(self, callback: Callable[[int], int]) -> None:
        """Register a drain callback fired while a leaving node is still
        semantically reachable: the callee hands every task it holds for
        the rank off to survivors and returns the handoff count.  A
        departing node is *not* a death — losing work here is an audit
        violation."""
        self._departing_callbacks.append(callback)

    def take_undeliverable(self, rank: int) -> list[tuple[Message, int]]:
        """Undelivered reliable payloads surfaced by ``rank``'s crash.
        One-shot: the caller (the driver) assumes rescue ownership."""
        return self._undelivered.pop(rank, [])

    def is_fenced(self, rank: int) -> bool:
        return self.machine.nodes[rank].fenced

    def quiesce(self) -> None:
        """The workload finished: stop the failure detector's periodic
        traffic (and any membership retry timers) so the event heap can
        drain and the run terminate."""
        if self.detector is not None:
            self.detector.stop()
        if self.membership is not None:
            self.membership.stop()

    def _crash(self, rank: int) -> None:
        node = self.machine.nodes[rank]
        if node.crashed:
            return
        node.crashed = True
        node._cpu_queue.clear()
        node._cpu_busy = False
        self.count("crashes", rank)
        self.note(rank, "crash")
        if rank in self.detected_dead:
            # the node was already (falsely) declared dead and fenced;
            # the death is real now — re-notify so work held for its
            # revival is written off
            node.fenced = False
            self.machine.sim.schedule(self.plan.detect_delay,
                                      self._renotify, rank)
        elif self.detector is None:
            self.machine.sim.schedule(self.plan.detect_delay,
                                      self._detect, rank)
        # else: the heartbeat monitors notice the silence on their own

    def _detect(self, rank: int) -> None:
        self.detected_dead.add(rank)
        self._undelivered[rank] = self.transport.handle_crash(rank)
        self.note(rank, "crash-detected")
        for callback in self._crash_callbacks:
            callback(rank)

    def _renotify(self, rank: int) -> None:
        self._undelivered[rank] = self.transport.handle_crash(rank)
        self.note(rank, "crash-detected")
        for callback in self._crash_callbacks:
            callback(rank)

    def declare_dead(self, rank: int) -> None:
        """Global death declaration (the heartbeat detector's verdict).

        For a really-crashed node this is exactly the oracle's
        :meth:`_detect`.  For a live node (a false positive) the node is
        *fenced* first — CPU queue wiped, execution/receipt blocked, like
        a crash — so the rescue that follows cannot race a local
        execution; a lease timer (or the end of its stall window) later
        revives it through :meth:`_refute`.
        """
        if rank in self.detected_dead:
            return
        if self.membership is not None and not self.membership.is_member(rank):
            # a departed (or never-admitted) node is dark *by choice*:
            # stale gossip about an ex-member must not fence anyone or
            # trigger a rescue — there is nothing to rescue
            return
        node = self.machine.nodes[rank]
        false_positive = not node.crashed
        if false_positive:
            node.fenced = True
            node._cpu_queue.clear()
            node._cpu_busy = False
            node._cpu_epoch += 1
            self.count("false_deaths", rank)
            self.note(rank, "fenced")
        self._detect(rank)
        if self.detector is not None:
            self.detector.on_declared_dead(rank)
            if false_positive and not node.stalled:
                self.machine.sim.schedule(self.detector.refute_delay,
                                          self._lease_expire, rank)

    def _lease_expire(self, rank: int) -> None:
        node = self.machine.nodes[rank]
        if node.crashed or not node.fenced or node.stalled:
            return  # really died meanwhile, already revived, or stalled
        self._refute(rank)

    def _refute(self, rank: int) -> None:
        """Revive a fenced-but-alive node: it refutes its death with a
        higher incarnation and rejoins the computation."""
        node = self.machine.nodes[rank]
        node.fenced = False
        node._cpu_epoch += 1
        self.detected_dead.discard(rank)
        self.transport.revive(rank)
        self.rejoined.append(rank)
        self.count("rejoins", rank)
        self.note(rank, "rejoin")
        if self.detector is not None:
            self.detector.on_refuted(rank)
        for callback in self._rejoin_callbacks:
            callback(rank)

    def _stall_begin(self, rank: int) -> None:
        node = self.machine.nodes[rank]
        if node.crashed:
            return
        node.stalled = True
        self.count("stalls", rank)
        self.note(rank, "stall-begin")

    def _stall_end(self, rank: int) -> None:
        node = self.machine.nodes[rank]
        node.stalled = False
        self.note(rank, "stall-end")
        if node.crashed:
            return
        if node.fenced:
            # the stall got this node falsely declared dead; it is awake
            # now, so it refutes immediately
            self._refute(rank)
            return
        if not node._cpu_busy and node._cpu_queue:
            node._start_next()
