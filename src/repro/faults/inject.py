"""Deterministic fault injection for the simulated machine.

``Machine.attach_faults(plan)`` installs a :class:`FaultInjector`: it
wraps the network's ``transmit`` with probabilistic wire faults and link
outages, schedules stall windows and fail-stop crashes as sim events, and
owns the :class:`~repro.faults.transport.ReliableTransport` that
``Node.send(reliable=True)`` routes through.

All randomness comes from one ``random.Random(plan.seed)`` consumed in
event order, so identical (plan, machine) seeds replay bit-identically —
serial, parallel, or across processes.  A null plan installs nothing;
the fault-free machine never even sees these code paths.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Optional

from repro.machine.message import Message

from .plan import FaultPlan
from .transport import ACK_KIND, ReliableTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine
    from repro.machine.node import Node

__all__ = ["FaultInjector", "FaultyNetwork"]


class _EnvelopeDelivery:
    """Receiver CPU callback for one classified reliable message.

    A named, slotted callable (rather than a closure) so that the node
    CPU queue and event heap stay picklable — a requirement of
    :mod:`repro.snapshot`'s checkpoint/restore.
    """

    __slots__ = ("transport", "entry", "handler")

    def __init__(self, transport, entry, handler) -> None:
        self.transport = transport
        self.entry = entry
        self.handler = handler

    def __call__(self, msg: Message) -> None:
        self.transport.deliver(self.entry, self.handler, msg)


class FaultyNetwork:
    """Transmit-side wrapper installed over the machine's real network."""

    def __init__(self, inner, injector: "FaultInjector") -> None:
        self.inner = inner
        self.injector = injector
        self.sim = inner.sim
        self.topology = inner.topology
        self.latency = inner.latency

    @property
    def stats(self):
        return self.inner.stats

    @property
    def tracer(self):
        return self.inner.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.inner.tracer = value

    def transmit(self, msg: Message, tasks_carried: int = 0) -> None:
        if msg.src == msg.dest:  # loopback never touches a wire
            self.inner.transmit(msg, tasks_carried)
            return
        inj = self.injector
        action, extra = inj.wire_verdict(msg)
        if action is None:
            self.inner.transmit(msg, tasks_carried)
            return
        counts = inj.counts
        if action == "drop":
            key = "outage_drops" if extra == "outage" else "drops"
            counts[key] += 1
            inj.note(msg.src, f"net-{key[:-1]}", msg)
            return
        if action == "dup":
            counts["duplicates"] += 1
            inj.note(msg.src, "net-duplicate", msg)
            self.inner.transmit(msg, tasks_carried)
            self.inner.transmit(msg, tasks_carried)
            return
        # "delay" (also used for reorder: enough jitter to overtake peers)
        counts["delays"] += 1
        inj.note(msg.src, "net-delay", msg)
        self.sim.schedule(extra, self.inner.transmit, msg, tasks_carried)


class FaultInjector:
    """Owns all fault state for one machine.  Built by ``attach_faults``."""

    def __init__(self, machine: "Machine", plan: FaultPlan) -> None:
        self.machine = machine
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.transport = ReliableTransport(
            machine, plan.rto, plan.max_backoff_doublings)
        #: ranks whose crash the failure detector has announced.
        self.detected_dead: set[int] = set()
        self._crash_callbacks: list[Callable[[int], None]] = []
        self._undelivered: dict[int, list[tuple[Message, int]]] = {}
        self.counts: dict[str, int] = {
            "drops": 0, "outage_drops": 0, "duplicates": 0, "delays": 0,
            "crashes": 0, "stalls": 0, "blackholed": 0, "dups_suppressed": 0,
        }
        self._kinds = frozenset(plan.kinds) if plan.kinds else None
        self._links = frozenset(plan.links) if plan.links else None
        lat = machine.latency
        diameter = max(1, machine.topology.diameter())
        self.reorder_window = (
            plan.reorder_window if plan.reorder_window is not None
            else 4.0 * (lat.software_overhead + diameter * lat.per_hop))
        machine.network = FaultyNetwork(machine.network, self)
        sim = machine.sim
        for rank, t in plan.crashes:
            machine.topology.check_rank(rank)
            sim.schedule_at(t, self._crash, rank)
        for rank, start, duration in plan.stalls:
            machine.topology.check_rank(rank)
            sim.schedule_at(start, self._stall_begin, rank)
            sim.schedule_at(start + duration, self._stall_end, rank)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def note(self, node: int, name: str, msg: Optional[Message] = None,
             args: Optional[dict] = None) -> None:
        tr = self.machine.tracer
        if tr is None:
            return
        if msg is not None:
            args = {"kind": msg.kind, "src": msg.src, "dest": msg.dest,
                    **(args or {})}
        tr.instant(node, "fault", name, self.machine.sim.now, args)

    def stats_summary(self) -> dict:
        """Picklable fault/recovery counters for ``RunMetrics.extra``."""
        return {
            **self.counts,
            "retransmits": self.transport.retransmits,
            "acks": self.transport.acks,
            "detected_dead": sorted(self.detected_dead),
        }

    # ------------------------------------------------------------------
    # wire faults
    # ------------------------------------------------------------------
    def wire_verdict(self, msg: Message):
        """Decide the fate of one transmission.

        Draw order is fixed and rate-gated (a zero rate consumes no
        randomness), which is what keeps plans with different knobs from
        perturbing each other's streams.
        """
        plan = self.plan
        now = self.machine.sim.now
        for src, dest, start, duration in plan.outages:
            if (src == msg.src and dest == msg.dest
                    and start <= now < start + duration):
                return "drop", "outage"
        if self._kinds is not None and msg.kind not in self._kinds:
            return None, None
        if self._links is not None and (msg.src, msg.dest) not in self._links:
            return None, None
        rng = self.rng
        if plan.drop_rate and rng.random() < plan.drop_rate:
            return "drop", "random"
        if plan.duplicate_rate and rng.random() < plan.duplicate_rate:
            return "dup", None
        if plan.delay_rate and rng.random() < plan.delay_rate:
            return "delay", rng.uniform(0.0, plan.delay_max)
        if plan.reorder_rate and rng.random() < plan.reorder_rate:
            return "delay", rng.uniform(0.0, self.reorder_window)
        return None, None

    # ------------------------------------------------------------------
    # dispatch interception (receiver side)
    # ------------------------------------------------------------------
    def intercept_dispatch(self, node: "Node", msg: Message, handler):
        """Veto or wrap an arriving message's handler (see Node.dispatch)."""
        if node.crashed:
            self.counts["blackholed"] += 1
            return None
        if msg.kind == ACK_KIND:
            # envelope control traffic: processed immediately, no CPU
            # charge — an ack stuck behind a busy CPU would race its own
            # retransmit timer
            self.transport._on_ack(msg)
            return None
        verdict = self.transport.classify_arrival(node, msg)
        if verdict is None:
            return handler
        if verdict is False:
            self.counts["dups_suppressed"] += 1
            return None
        return _EnvelopeDelivery(self.transport, verdict, handler)

    # ------------------------------------------------------------------
    # crashes and stalls
    # ------------------------------------------------------------------
    def on_crash_detected(self, callback: Callable[[int], None]) -> None:
        """Register a failure-detector callback (fires per dead rank,
        ``detect_delay`` after the crash, as a sim event)."""
        self._crash_callbacks.append(callback)

    def take_undeliverable(self, rank: int) -> list[tuple[Message, int]]:
        """Undelivered reliable payloads surfaced by ``rank``'s crash.
        One-shot: the caller (the driver) assumes rescue ownership."""
        return self._undelivered.pop(rank, [])

    def _crash(self, rank: int) -> None:
        node = self.machine.nodes[rank]
        if node.crashed:
            return
        node.crashed = True
        node._cpu_queue.clear()
        node._cpu_busy = False
        self.counts["crashes"] += 1
        self.note(rank, "crash")
        self.machine.sim.schedule(self.plan.detect_delay, self._detect, rank)

    def _detect(self, rank: int) -> None:
        self.detected_dead.add(rank)
        self._undelivered[rank] = self.transport.handle_crash(rank)
        self.note(rank, "crash-detected")
        for callback in self._crash_callbacks:
            callback(rank)

    def _stall_begin(self, rank: int) -> None:
        node = self.machine.nodes[rank]
        if node.crashed:
            return
        node.stalled = True
        self.counts["stalls"] += 1
        self.note(rank, "stall-begin")

    def _stall_end(self, rank: int) -> None:
        node = self.machine.nodes[rank]
        node.stalled = False
        self.note(rank, "stall-end")
        if not node.crashed and not node._cpu_busy and node._cpu_queue:
            node._start_next()
