"""The load generator: schedules, drivers, and per-cell measurements.

Two drivers share one schedule builder:

* **runner** — cells run in a dedicated ``ProcessPoolExecutor`` with
  ``concurrency`` workers, a loadtest-private result cache, and (when
  ``warm_start``) a prewarmed snapshot cache, so hit rates reflect this
  run's mix rather than whatever ``.result_cache/`` accumulated;
* **service** — cells are submitted to a live ``repro serve`` instance
  (booted in-process on a free port, or an external ``--url``) by
  ``concurrency`` client threads that retry 429/503 with the server's
  ``Retry-After``, counting every rejection.

The schedule is deterministic: cell *i* takes the ``i % len(mix)``-th
entry of the workload × strategy × shards mix (round-robin, so repeats —
the result-cache exercise — never race their originals back-to-back),
and open-loop arrival offsets come from ``random.Random(seed)``.  Same
seed + config ⇒ identical request sequence, which
``tests/loadtest`` pins down.
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.runner.spec import RunRequest

__all__ = ["LoadtestConfig", "ScheduledCell", "build_schedule", "run_loadtest"]

#: hard ceiling on 429/503 retries per cell before the cell counts failed
_MAX_REJECT_RETRIES = 200


@dataclass(frozen=True)
class LoadtestConfig:
    """One loadtest campaign, fully determined by its fields + seed."""

    #: total cells driven through the system
    sessions: int = 16
    #: workers (runner) / client threads (service) applying the load
    concurrency: int = 4
    #: ``closed`` = next request on completion; ``open`` = seeded Poisson
    #: arrivals at ``rate``/s regardless of completions
    arrival: str = "closed"
    #: open-loop arrival rate, requests/second
    rate: float = 8.0
    workloads: tuple = ("queens-10",)
    strategies: tuple = ("RIPS", "RID")
    #: shard counts in the mix (0 = plain serial kernel)
    shards: tuple = (0,)
    num_nodes: int = 16
    scale: str = "small"
    #: workload seed each cell runs with (one value keeps the snapshot
    #: prefix shared across the strategy mix)
    workload_seed: int = 7
    #: harness seed: arrival jitter, nothing else — the mix is round-robin
    seed: int = 0
    #: prewarm + share the prepared-machine snapshot across cells
    warm_start: bool = True
    #: per-cell / per-session wall-clock budget, seconds
    timeout: float = 300.0
    #: run one traced sentinel cell for subsystem attribution
    attribution: bool = True
    #: include the node/event/lane memory audit of a prepared machine
    mem_audit: bool = False
    #: attach a seeded elastic-membership plan (standby ranks, runtime
    #: joins/leaves, elections, the odd crash) to every cell — the
    #: capacity-under-churn profile.  Plans are drawn per cell from the
    #: campaign seed, so the schedule stays deterministic.
    churn: bool = False

    def __post_init__(self) -> None:
        if self.arrival not in ("closed", "open"):
            raise ValueError(
                f"arrival must be 'closed' or 'open', got {self.arrival!r}")
        if self.sessions < 1 or self.concurrency < 1:
            raise ValueError("sessions and concurrency must be >= 1")

    def to_dict(self) -> dict:
        doc = asdict(self)
        for key in ("workloads", "strategies", "shards"):
            doc[key] = list(doc[key])
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "LoadtestConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(
                f"unknown loadtest config field(s): {', '.join(unknown)}")
        doc = dict(doc)
        for key in ("workloads", "strategies", "shards"):
            if key in doc:
                doc[key] = tuple(doc[key])
        return cls(**doc)


@dataclass(frozen=True)
class ScheduledCell:
    """One arrival: which request, and when it is offered (open loop)."""

    index: int
    offset_s: float
    request: RunRequest


def build_schedule(config: LoadtestConfig) -> list[ScheduledCell]:
    """The deterministic request sequence of a campaign.

    Round-robin over the ``workloads × strategies × shards`` mix (outer
    to inner), so any ``sessions > len(mix)`` repeats earlier content
    hashes — those repeats are the result-cache/coalescing exercise.
    Open-loop offsets are cumulative ``Expovariate(rate)`` draws from
    ``random.Random(seed)``; closed-loop offsets are all zero.

    With ``churn``, each cell additionally carries an elastic-membership
    :class:`~repro.faults.FaultPlan` drawn from
    :func:`repro.faults.chaos.random_churn_plan` with the same per-cell
    RNG stream the chaos harness uses (``(seed << 20) ^ i``), so a
    failing cell can be replayed under ``repro chaos --churn``.  Distinct
    plans give every cell a distinct content hash, which deliberately
    defeats result-cache coalescing: the churn profile measures raw
    capacity with membership protocol traffic on every run.
    """
    mix = [
        (w, s, sh)
        for w in config.workloads
        for s in config.strategies
        for sh in config.shards
    ]
    if not mix:
        raise ValueError("empty workload/strategy/shards mix")
    if config.churn:
        from repro.faults.chaos import random_churn_plan
    rng = random.Random(config.seed)
    schedule = []
    offset = 0.0
    for i in range(config.sessions):
        workload, strategy, shards = mix[i % len(mix)]
        if config.arrival == "open":
            offset += rng.expovariate(config.rate)
        faults = None
        if config.churn:
            faults = random_churn_plan(
                random.Random((config.seed << 20) ^ i),
                num_nodes=config.num_nodes)
        req = RunRequest(
            workload=workload,
            strategy=strategy,
            num_nodes=config.num_nodes,
            seed=config.workload_seed,
            scale=config.scale,
            shards=shards,
            faults=faults,
        )
        schedule.append(ScheduledCell(index=i, offset_s=offset, request=req))
    return schedule


# ----------------------------------------------------------------------
# runner target
# ----------------------------------------------------------------------
_worker_caches: dict = {}


def _worker_cache(root: str):
    """Per-process ResultCache memo (workers reuse one instance)."""
    from repro.runner.result_cache import ResultCache

    cache = _worker_caches.get(root)
    if cache is None:
        from repro.store import LocalDirStore

        cache = _worker_caches[root] = ResultCache(
            store=LocalDirStore(root))
    return cache


def _cell_worker(req: RunRequest, submitted_at: float, cache_root: str) -> dict:
    """Execute one cell in a pool worker; measure it honestly.

    ``wait_s`` is pickup minus offered-time on the shared wall clock
    (queue wait under contention — the thing a closed loop saturates);
    ``exec_s`` is the in-worker execution on the monotonic clock.
    """
    from repro.runner import prefix as prefix_mod
    from repro.session import Session

    wait_s = max(0.0, time.time() - submitted_at)
    t0 = time.perf_counter()
    cache = _worker_cache(cache_root)
    hit = cache.get(req)
    if hit is not None:
        return {
            "ok": True, "wait_s": wait_s,
            "exec_s": time.perf_counter() - t0,
            "cache_hit": True, "snapshot_hits": 0, "events": 0,
            "T": hit.T,
        }
    snap_before = prefix_mod.cache_counters()["restores"]
    sess = Session.from_request(req)
    metrics = sess.run()
    events, _now = sess.progress()
    snap_hits = prefix_mod.cache_counters()["restores"] - snap_before
    cache.put(req, metrics)
    return {
        "ok": True, "wait_s": wait_s, "exec_s": time.perf_counter() - t0,
        "cache_hit": False, "snapshot_hits": snap_hits, "events": events,
        "T": metrics.T,
    }


def _drive_runner(config: LoadtestConfig,
                  schedule: list[ScheduledCell]) -> dict:
    from repro.runner import prefix as prefix_mod

    with tempfile.TemporaryDirectory(prefix="repro-loadtest-",
                                     ignore_cleanup_errors=True) as tmp:
        cache_root = os.path.join(tmp, "results")
        snap_root = os.path.join(tmp, "snapshots")
        saved = {k: os.environ.get(k) for k in
                 (prefix_mod.ENV_WARM_START, prefix_mod.ENV_SNAPSHOT_DIR)}
        try:
            if config.warm_start:
                prefix_mod.set_warm_start(True, cache_dir=snap_root)
                prefix_mod.prewarm_requests([c.request for c in schedule])
            # env is inherited by pool workers at fork time — the pool
            # must be created *after* the warm-start env is in place
            pool = ProcessPoolExecutor(max_workers=config.concurrency)
            rows: list = [None] * len(schedule)
            started = time.perf_counter()
            wall0 = time.time()
            try:
                futures = []
                for cell in schedule:
                    if config.arrival == "open":
                        due = wall0 + cell.offset_s
                        delay = due - time.time()
                        if delay > 0:
                            time.sleep(delay)
                        offered = due
                    else:
                        offered = time.time()
                    futures.append((cell.index, pool.submit(
                        _cell_worker, cell.request, offered, cache_root)))
                for i, fut in futures:
                    rows[i] = fut.result(timeout=config.timeout)
                elapsed = time.perf_counter() - started
                pool.shutdown(wait=True)
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        finally:
            prefix_mod.set_warm_start(False)
            for key, val in saved.items():
                if val is not None:
                    os.environ[key] = val
    return _fold_rows(config, rows, elapsed, target="runner")


# ----------------------------------------------------------------------
# service target
# ----------------------------------------------------------------------
def _service_cell(client, req: RunRequest, offered: float,
                  timeout: float) -> dict:
    """Submit one cell over HTTP, riding out 429/503 with Retry-After."""
    from repro.service.client import ServiceClientError, SessionFailed

    rejects = {"r429": 0, "r503": 0}
    t0 = time.perf_counter()
    for _attempt in range(_MAX_REJECT_RETRIES):
        try:
            doc = client.run(req, timeout=timeout)
        except ServiceClientError as exc:
            if exc.status == 429:
                rejects["r429"] += 1
            elif exc.status == 503:
                rejects["r503"] += 1
            else:
                return {"ok": False, "error": str(exc),
                        "wait_s": max(0.0, time.time() - offered),
                        "exec_s": time.perf_counter() - t0,
                        "cache_hit": False, "snapshot_hits": 0,
                        "events": 0, **rejects}
            time.sleep(min(1.0, exc.retry_after or 0.05))
            continue
        except (SessionFailed, TimeoutError) as exc:
            return {"ok": False, "error": str(exc),
                    "wait_s": max(0.0, time.time() - offered),
                    "exec_s": time.perf_counter() - t0,
                    "cache_hit": False, "snapshot_hits": 0,
                    "events": 0, **rejects}
        return {
            "ok": True,
            "wait_s": max(0.0, time.time() - offered),
            "exec_s": time.perf_counter() - t0,
            "cache_hit": bool(doc.get("from_cache")),
            "snapshot_hits": 0,
            "events": int(doc.get("events_processed") or 0),
            **rejects,
        }
    return {"ok": False, "error": "rejected too many times",
            "wait_s": max(0.0, time.time() - offered),
            "exec_s": time.perf_counter() - t0,
            "cache_hit": False, "snapshot_hits": 0, "events": 0, **rejects}


def _drive_service(config: LoadtestConfig, schedule: list[ScheduledCell],
                   url: Optional[str]) -> dict:
    from repro.service.client import ServiceClient

    bg = None
    if url is None:
        from repro.service import ServiceConfig, serve_background

        bg = serve_background(ServiceConfig(
            port=0, max_inflight=max(2, config.concurrency),
            journal=False, store_root=tempfile.mkdtemp(
                prefix="repro-loadtest-svc-")))
        url = bg.url
    try:
        client = ServiceClient(url)
        pool = ThreadPoolExecutor(max_workers=config.concurrency)
        rows: list = [None] * len(schedule)
        started = time.perf_counter()
        wall0 = time.time()
        try:
            futures = []
            for cell in schedule:
                if config.arrival == "open":
                    due = wall0 + cell.offset_s
                    delay = due - time.time()
                    if delay > 0:
                        time.sleep(delay)
                    offered = due
                else:
                    offered = time.time()
                futures.append((cell.index, pool.submit(
                    _service_cell, client, cell.request, offered,
                    config.timeout)))
            for i, fut in futures:
                rows[i] = fut.result(timeout=config.timeout)
        finally:
            pool.shutdown(wait=True)
        elapsed = time.perf_counter() - started
        outcome = _fold_rows(config, rows, elapsed, target="service")
        # server-side registry snapshot: admission/shed/coalescing truth
        outcome["service_metrics"] = client.metrics()
    finally:
        if bg is not None:
            bg.stop()
    return outcome


# ----------------------------------------------------------------------
# folding + extras
# ----------------------------------------------------------------------
def _fold_rows(config: LoadtestConfig, rows: list, elapsed: float,
               target: str) -> dict:
    from repro.obs.metrics import summarize

    ok_rows = [r for r in rows if r and r.get("ok")]
    executed = [r for r in ok_rows if not r["cache_hit"]]
    cache_hits = sum(1 for r in ok_rows if r["cache_hit"])
    events = sum(r["events"] for r in ok_rows)
    outcome = {
        "target": target,
        "elapsed_s": elapsed,
        "sessions": len(rows),
        "completed": len(ok_rows),
        "failed": len(rows) - len(ok_rows),
        "latency_s": summarize([r["exec_s"] for r in ok_rows]),
        "wait_s": summarize([r["wait_s"] for r in ok_rows]),
        "events_total": events,
        "events_per_sec": events / elapsed if elapsed > 0 else 0.0,
        "cache": {
            "result_hits": cache_hits,
            "result_hit_rate":
                cache_hits / len(ok_rows) if ok_rows else 0.0,
            "snapshot_hits": sum(r["snapshot_hits"] for r in ok_rows),
        },
        "errors": {
            "r429": sum(r.get("r429", 0) for r in rows if r),
            "r503": sum(r.get("r503", 0) for r in rows if r),
        },
    }
    failures = [r.get("error") for r in rows if r and not r.get("ok")]
    if failures:
        outcome["failures"] = failures[:8]
    _ = executed  # executed cells are implied: completed - result_hits
    return outcome


def _attribution_extra(config: LoadtestConfig) -> dict:
    """One traced sentinel cell → subsystem self-time split + exact
    rollup reconciliation (delta must be 0.0 by construction)."""
    from dataclasses import replace

    from repro.obs import Tracer
    from repro.obs.attribution import reconcile, subsystem_attribution
    from repro.runner.spec import execute_request

    req = replace(build_schedule(config)[0].request, trace=True, shards=0)
    metrics = execute_request(req)
    tracer = Tracer.from_records(metrics.extra.get("trace_records") or [])
    return {
        "subsystems": subsystem_attribution(tracer),
        "reconcile": reconcile(tracer),
        "spans": sum(1 for r in tracer.records if r["ph"] == "X"),
    }


def _mem_audit_extra(config: LoadtestConfig) -> dict:
    from repro.obs.memory import memory_audit
    from repro.session import Session

    sess = Session.from_request(build_schedule(config)[0].request).prepare()
    return memory_audit(sess._machine)


def run_loadtest(config: LoadtestConfig, target: str = "runner",
                 url: Optional[str] = None) -> dict:
    """Run one campaign against ``runner``, ``service``, or ``both``.

    Returns ``{target_name: outcome, ...}`` plus (config-dependent)
    ``attribution`` and ``mem_audit`` entries — the ``data["targets"]``
    payload of the loadtest report.
    """
    if target not in ("runner", "service", "both"):
        raise ValueError(f"target must be runner|service|both, got {target!r}")
    schedule = build_schedule(config)
    out: dict = {"targets": {}}
    if target in ("runner", "both"):
        out["targets"]["runner"] = _drive_runner(config, schedule)
    if target in ("service", "both"):
        out["targets"]["service"] = _drive_service(config, schedule, url)
    if config.attribution:
        out["attribution"] = _attribution_extra(config)
    if config.mem_audit:
        out["mem_audit"] = _mem_audit_extra(config)
    return out
