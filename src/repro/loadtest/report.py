"""Loadtest report emission + the ``--check`` regression gate.

The report is a ``repro.report/1`` envelope (kind ``"loadtest"``) whose
``data`` carries a versioned payload (:data:`LOADTEST_DATA_VERSION`):
the campaign config, one outcome block per driven target, and the
attribution / memory-audit extras.  ``BENCH_loadtest.json`` at the repo
root commits a baseline of exactly this shape; :func:`check_loadtest`
re-runs the baseline's own config and gates the measurement against it,
mirroring ``bench --check``:

* **structural gates** (the real contract): every session completes,
  none fail, p50/p99 latency and events/sec are non-zero, the cache sees
  hits when the mix repeats, the attribution rollup reconciles to a 0.0
  delta;
* **throughput/latency gates** (generous — shared CI runners are noisy):
  events/sec may not fall below ``tolerance_events`` × baseline, p99
  cell latency may not exceed ``tolerance_p99`` × baseline.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Optional

from repro.obs.metrics import make_report, validate_report

from .harness import LoadtestConfig, run_loadtest

__all__ = [
    "DEFAULT_LOADTEST_PATH",
    "LOADTEST_DATA_VERSION",
    "TOLERANCE_EVENTS",
    "TOLERANCE_P99",
    "check_loadtest",
    "emit_loadtest",
    "format_loadtest",
    "make_loadtest_report",
]

LOADTEST_DATA_VERSION = "repro.loadtest/1"

DEFAULT_LOADTEST_PATH = Path(__file__).resolve().parents[3] / "BENCH_loadtest.json"

#: measured events/sec must stay above this fraction of the baseline
TOLERANCE_EVENTS = 0.10
#: measured p99 cell latency must stay below this multiple of the baseline
TOLERANCE_P99 = 10.0


def make_loadtest_report(config: LoadtestConfig, outcome: dict) -> dict:
    """Wrap a :func:`~repro.loadtest.harness.run_loadtest` outcome in the
    shared envelope, stamped with environment provenance."""
    data = {
        "version": LOADTEST_DATA_VERSION,
        "config": config.to_dict(),
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        **outcome,
    }
    return make_report("loadtest", data)


def emit_loadtest(config: LoadtestConfig, target: str = "runner",
                  url: Optional[str] = None,
                  path: Optional[Path] = None) -> dict:
    """Run a campaign, write the report JSON, return the envelope."""
    report = make_loadtest_report(config, run_loadtest(config, target, url))
    out = Path(path) if path is not None else DEFAULT_LOADTEST_PATH
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def _structural_failures(report: dict) -> list[str]:
    """The non-negotiable gates: a loadtest that "passed" with zero
    latency or zero throughput measured nothing."""
    failures = []
    data = report["data"]
    if data.get("version") != LOADTEST_DATA_VERSION:
        failures.append(
            f"report version {data.get('version')!r} != {LOADTEST_DATA_VERSION}")
        return failures
    targets = data.get("targets") or {}
    if not targets:
        failures.append("no targets driven")
    for name, out in targets.items():
        if out["failed"]:
            failures.append(f"{name}: {out['failed']} session(s) failed")
        if out["completed"] != out["sessions"]:
            failures.append(
                f"{name}: only {out['completed']}/{out['sessions']} completed")
        lat = out.get("latency_s") or {}
        if not (lat.get("p50", 0) > 0 and lat.get("p99", 0) > 0):
            failures.append(f"{name}: latency percentiles are zero/absent")
        if not out.get("events_per_sec", 0) > 0:
            failures.append(f"{name}: events/sec under contention is zero")
        cfg = data.get("config") or {}
        mix = (len(cfg.get("workloads", [])) * len(cfg.get("strategies", []))
               * len(cfg.get("shards", [1])))
        # churn attaches a distinct fault plan per cell, so repeats never
        # share a content hash — zero result-cache hits is the expected
        # shape there, not a broken cache
        if cfg.get("sessions", 0) > mix \
                and not cfg.get("churn", False) \
                and out["cache"]["result_hits"] == 0:
            failures.append(
                f"{name}: repeating mix produced zero result-cache hits")
    attribution = data.get("attribution")
    if attribution is not None and not attribution["reconcile"]["ok"]:
        failures.append(
            f"attribution rollup does not reconcile: "
            f"delta={attribution['reconcile']['delta_s']}")
    return failures


def check_loadtest(path: Optional[Path] = None,
                   report: Optional[dict] = None) -> dict:
    """Gate a fresh measurement against the committed baseline.

    Loads ``BENCH_loadtest.json`` (or ``path``), re-runs the campaign
    with the baseline's own config/targets unless a ``report`` is given,
    and compares.  Returns the same shape ``check_bench`` does:
    ``{"ok", "baseline", "measured", "ratios", "failures", ...}``.
    Never rewrites the baseline.
    """
    base_path = Path(path) if path is not None else DEFAULT_LOADTEST_PATH
    if not base_path.exists():
        return {"ok": False, "path": str(base_path),
                "failures": [f"no baseline at {base_path}"]}
    baseline = validate_report(
        json.loads(base_path.read_text()), kind="loadtest")
    config = LoadtestConfig.from_dict(baseline["data"]["config"])
    base_targets = baseline["data"]["targets"]
    if report is None:
        target = ("both" if len(base_targets) > 1
                  else next(iter(base_targets)))
        report = make_loadtest_report(
            config, run_loadtest(config, target=target))
    else:
        validate_report(report, kind="loadtest")

    failures = _structural_failures(report)
    ratios: dict = {}
    for name, base_out in base_targets.items():
        out = report["data"]["targets"].get(name)
        if out is None:
            failures.append(f"target {name!r} missing from measurement")
            continue
        base_eps = base_out.get("events_per_sec") or 0.0
        eps = out.get("events_per_sec") or 0.0
        if base_eps > 0:
            ratio = eps / base_eps
            ratios[f"{name}.events_per_sec"] = round(ratio, 3)
            if ratio < TOLERANCE_EVENTS:
                failures.append(
                    f"{name}: events/sec regressed to {ratio:.0%} of the "
                    f"baseline ({eps:,.0f} vs {base_eps:,.0f}; "
                    f"floor {TOLERANCE_EVENTS:.0%})")
        base_p99 = (base_out.get("latency_s") or {}).get("p99") or 0.0
        p99 = (out.get("latency_s") or {}).get("p99") or 0.0
        if base_p99 > 0 and p99 > 0:
            ratio = p99 / base_p99
            ratios[f"{name}.p99_latency"] = round(ratio, 3)
            if ratio > TOLERANCE_P99:
                failures.append(
                    f"{name}: p99 latency grew {ratio:.1f}x over the "
                    f"baseline ({p99:.3f}s vs {base_p99:.3f}s; "
                    f"ceiling {TOLERANCE_P99:g}x)")
    return {
        "ok": not failures,
        "path": str(base_path),
        "tolerance": {"events_frac": TOLERANCE_EVENTS,
                      "p99_factor": TOLERANCE_P99},
        "baseline": {
            name: {"events_per_sec": out.get("events_per_sec"),
                   "p99_latency_s": (out.get("latency_s") or {}).get("p99")}
            for name, out in base_targets.items()
        },
        "measured": {
            name: {"events_per_sec": out.get("events_per_sec"),
                   "p99_latency_s": (out.get("latency_s") or {}).get("p99")}
            for name, out in report["data"]["targets"].items()
        },
        "ratios": ratios,
        "failures": failures,
    }


def format_loadtest(report: dict) -> str:
    """Human-facing summary tables of a loadtest envelope."""
    from repro.metrics.report import format_table

    data = report["data"]
    rows = []
    for name, out in sorted(data["targets"].items()):
        lat = out.get("latency_s") or {}
        wait = out.get("wait_s") or {}
        rows.append({
            "target": name,
            "done": f"{out['completed']}/{out['sessions']}",
            "p50 (s)": f"{lat.get('p50', 0):.3f}",
            "p90 (s)": f"{lat.get('p90', 0):.3f}",
            "p99 (s)": f"{lat.get('p99', 0):.3f}",
            "wait p99": f"{wait.get('p99', 0):.3f}",
            "ev/s": f"{out['events_per_sec']:,.0f}",
            "hits": out["cache"]["result_hits"],
            "snap": out["cache"]["snapshot_hits"],
            "429": out["errors"]["r429"],
            "503": out["errors"]["r503"],
        })
    cfg = data["config"]
    title = (f"loadtest: {cfg['sessions']} sessions x "
             f"{cfg['concurrency']} {cfg['arrival']}-loop workers, "
             f"mix {len(cfg['workloads'])}w x {len(cfg['strategies'])}s x "
             f"{len(cfg['shards'])}sh, seed {cfg['seed']}")
    lines = [format_table(rows, title=title)]
    attribution = data.get("attribution")
    if attribution:
        subs = "  ".join(f"{k}={v:.4f}s" for k, v in
                         sorted(attribution["subsystems"].items()))
        rec = attribution["reconcile"]
        lines.append(f"  attribution: {subs}")
        lines.append(f"  rollup reconciles: delta={rec['delta_s']}s "
                     f"over {attribution['spans']} spans "
                     f"({'ok' if rec['ok'] else 'MISMATCH'})")
    mem = data.get("mem_audit")
    if mem:
        from repro.obs.memory import format_memory_audit

        lines.append(format_memory_audit(mem))
    return "\n".join(lines) + "\n"
