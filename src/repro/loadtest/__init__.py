"""Closed-loop capacity harness: the system measuring itself *as a system*.

``BENCH_events_per_sec.json`` answers "how fast is one kernel"; this
package answers the paper's actual headline question — throughput under
load.  ``python -m repro loadtest`` drives N concurrent sessions
(a configurable mix of workloads × strategies × shard counts, closed- or
open-loop arrival, seeded) through either the in-process runner's
ProcessPool or a live ``repro serve`` instance, and reports:

* p50/p90/p99 cell latency and queue wait (honestly split — see the
  executor's ``wait_s``/``exec_s``),
* admission/shed/429/503 counts (service target),
* result-cache and snapshot-cache hit rates,
* aggregate events/sec under contention,
* per-subsystem time attribution from a traced sentinel run
  (:mod:`repro.obs.attribution`), and
* a node/event/lane memory audit (:mod:`repro.obs.memory`).

The report is a versioned ``repro.report/1`` envelope; the committed
``BENCH_loadtest.json`` baseline plus :func:`check_loadtest` gate
regressions exactly the way ``bench --check`` does.
"""

from .harness import LoadtestConfig, build_schedule, run_loadtest
from .report import (
    LOADTEST_DATA_VERSION,
    check_loadtest,
    format_loadtest,
    make_loadtest_report,
)

__all__ = [
    "LOADTEST_DATA_VERSION",
    "LoadtestConfig",
    "build_schedule",
    "check_loadtest",
    "format_loadtest",
    "make_loadtest_report",
    "run_loadtest",
]
