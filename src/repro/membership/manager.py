"""Deterministic elastic membership over the simulated mesh.

The 1995 paper schedules over a fixed processor set; PR 5 relaxed that
for *failures* (detection, fencing, rejoin).  This module relaxes it on
purpose: nodes **join**, **leave**, and **elect roots** at runtime, on a
seeded :class:`~repro.faults.plan.FaultPlan` schedule, and every strategy
rebalances onto the changed processor set at each *membership epoch*.

Protocol (adapted from the ESP32 mesh Advertise/ClaimChild/RootElected
idiom; all timers run on the sim clock, all signals are real messages on
the mesh, so the protocol's cost lands in ``Th`` like everything else):

* **Join** (scale-up): a standby node broadcasts ``mem.advertise`` to
  its physical neighbors; a member neighbor answers ``mem.claim``; the
  joiner accepts its first sponsor with ``mem.claim_ack``; the sponsor
  forwards ``mem.admit`` to the current root, which commits the epoch.
  The joiner re-advertises on a fixed period until admitted (its member
  neighbors may all be dark for a while).
* **Leave** (scale-down, drain-and-depart): the leaver announces
  ``mem.depart`` to the root, receives ``mem.depart_ack``, and *drains*:
  every queued, in-flight, strategy-pooled, and pinned task is handed
  off to survivors (pinned tasks are re-pinned), then the node goes
  dark.  A departing node is **not** a death: the drain declares zero
  losses, which each epoch's conservation audit records.
* **Election**: incarnation-numbered and quorum-acknowledged.  The
  deterministic candidate for incarnation ``k`` is the ``k``-th usable
  member in sorted order (so scheduled elections actually rotate the
  root).  The candidate sends ``mem.elect`` to every member, collects
  ``mem.elect_ack`` votes, and commits on a majority of usable members.
  A crash of the current root triggers an election automatically.

Epoch commits follow PR 5's global-transition shortcut: once the commit
point is reached the new member set is applied as common knowledge (the
``mem.epoch``/``mem.root`` broadcasts that follow are real traffic, but
carry no extra semantics).  Each commit is one synchronous step inside a
single sim event, so the epoch-boundary audit — lost-task delta across
the transition — is exact.

Everything here is bound-method callbacks and plain containers — no
closures, no wall-clock, no RNG — so a mid-transition checkpoint
restores and resumes the handshake bit-identically (snapshot v4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.machine.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.inject import FaultInjector

__all__ = ["MembershipManager", "ADVERTISE_KIND", "CLAIM_KIND",
           "CLAIM_ACK_KIND"]

ADVERTISE_KIND = "mem.advertise"
CLAIM_KIND = "mem.claim"
CLAIM_ACK_KIND = "mem.claim_ack"
ADMIT_KIND = "mem.admit"
DEPART_KIND = "mem.depart"
DEPART_ACK_KIND = "mem.depart_ack"
ELECT_KIND = "mem.elect"
ELECT_ACK_KIND = "mem.elect_ack"
EPOCH_KIND = "mem.epoch"

#: wire size of a membership control message (a few integers)
CTRL_BYTES = 32


class MembershipManager:
    """Runtime member set, root, and epoch log for one machine."""

    def __init__(self, injector: "FaultInjector") -> None:
        self.injector = injector
        machine = injector.machine
        self.machine = machine
        plan = injector.plan
        lat = machine.latency
        one_way = (lat.software_overhead
                   + max(1, machine.topology.diameter()) * lat.per_hop)
        #: advertise / depart / election retry period (deterministic).
        self.retry_period = 12.0 * one_way
        #: monotonically increasing membership epoch (0 = the initial set).
        self.epoch = 0
        #: the admitted member set; crashes do *not* remove membership
        #: (a crashed member is dead, not departed).
        self.members: set[int] = set(range(machine.num_nodes))
        #: current protocol root and its election incarnation.
        self.root = 0
        self.root_incarnation = 0
        #: one dict per epoch transition (kind/rank/time/audit deltas).
        self.log: list[dict] = []
        #: election bookkeeping: votes per incarnation, last acked inc
        #: per rank, highest incarnation ever initiated.
        self._votes: dict[int, set[int]] = {}
        self._acked_inc = [0] * machine.num_nodes
        self._max_inc = 0
        self._election_wanted = False
        #: join bookkeeping: joining rank -> chosen sponsor (or None).
        self._sponsors: dict[int, Optional[int]] = {}
        #: leaves whose rank was root at leave time: retried post-election.
        self._pending_leaves: list[int] = []
        #: set by :meth:`stop` when the workload finishes (retry timers
        #: stop re-arming so the event heap can drain).
        self.stopped = False
        #: sim time :meth:`stop` fired — the commit horizon: an event
        #: still mid-handshake at this instant legitimately never
        #: commits.  None while the run is live.
        self.stopped_at: Optional[float] = None
        for rank in plan.standby:
            machine.topology.check_rank(rank)
            node = machine.nodes[rank]
            node.membership = "standby"
            self.members.discard(rank)
        if not self.members:
            raise ValueError("at least one initial member is required")
        for node in machine.nodes:
            node.on(ADVERTISE_KIND, self._on_advertise)
            node.on(CLAIM_KIND, self._on_claim)
            node.on(CLAIM_ACK_KIND, self._on_claim_ack)
            node.on(ADMIT_KIND, self._on_admit)
            node.on(DEPART_KIND, self._on_depart)
            node.on(DEPART_ACK_KIND, self._on_depart_ack)
            node.on(ELECT_KIND, self._on_elect)
            node.on(ELECT_ACK_KIND, self._on_elect_ack)
            node.on(EPOCH_KIND, self._on_epoch)
        sim = machine.sim
        for rank, t in plan.joins:
            machine.topology.check_rank(rank)
            sim.schedule_at(t, self._start_join, rank)
        for rank, t in plan.leaves:
            machine.topology.check_rank(rank)
            sim.schedule_at(t, self._start_leave, rank)
        for t in plan.elections:
            sim.schedule_at(t, self._start_election)
        injector.on_crash_detected(self._on_crash_detected)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_member(self, rank: int) -> bool:
        return rank in self.members

    def _usable(self, rank: int) -> bool:
        node = self.machine.nodes[rank]
        return (rank in self.members and not node.crashed
                and not node.fenced and not node.departed)

    def usable_members(self) -> list[int]:
        return [r for r in sorted(self.members) if self._usable(r)]

    def stop(self) -> None:
        """Workload done: membership retry timers stop re-arming."""
        if not self.stopped:
            self.stopped = True
            self.stopped_at = self.machine.sim.now

    def _driver(self):
        return self.machine.snapshot_root("driver")

    def _losses(self) -> int:
        driver = self._driver()
        return len(driver.lost_tasks) if driver is not None else 0

    def _note(self, rank: int, name: str, args: Optional[dict] = None) -> None:
        self.injector.note(rank, name, args=args)

    # ------------------------------------------------------------------
    # epoch commit core
    # ------------------------------------------------------------------
    def _commit(self, kind: str, rank: Optional[int], lost_before: int,
                extra: Optional[dict] = None) -> None:
        """Advance the epoch and record the transition's exact audit.

        Called at the end of a transition's synchronous commit step —
        the lost-task delta across the step is therefore exact: a
        crash cannot interleave inside one sim event.
        """
        self.epoch += 1
        entry = {
            "epoch": self.epoch,
            "kind": kind,
            "rank": rank,
            "t": self.machine.sim.now,
            "root": self.root,
            "incarnation": self.root_incarnation,
            "members": len(self.members),
            "lost_delta": self._losses() - lost_before,
        }
        if extra:
            entry.update(extra)
        self.log.append(entry)
        self.injector.count(f"mem_{kind}s", rank if rank is not None else 0)
        self.injector.count("mem_epochs", rank if rank is not None else 0)
        self._note(rank if rank is not None else self.root,
                   f"mem-{kind}", args=entry)
        self._broadcast_epoch(kind, rank)

    def _broadcast_epoch(self, kind: str, rank: Optional[int]) -> None:
        """Spread the commit over real links (informational: the commit
        itself is applied as common knowledge, like ``declare_dead``)."""
        root = self.machine.nodes[self.root]
        if root.crashed or root.fenced or root.departed:
            return
        payload = (self.epoch, kind, rank, self.root, self.root_incarnation)
        for member in sorted(self.members):
            if member != self.root:
                root.send(member, EPOCH_KIND, payload, size=CTRL_BYTES)

    def _on_epoch(self, msg: Message) -> None:
        """Epoch announcements carry no extra semantics (see above)."""

    def summary(self) -> dict:
        """Picklable membership stats for ``RunMetrics.extra``."""
        return {
            "epoch": self.epoch,
            "root": self.root,
            "root_incarnation": self.root_incarnation,
            "members": sorted(self.members),
            "stopped_at": self.stopped_at,
            "transitions": [dict(e) for e in self.log],
        }

    # ------------------------------------------------------------------
    # join: advertise -> claim -> claim_ack -> admit -> commit
    # ------------------------------------------------------------------
    def _start_join(self, rank: int) -> None:
        if self.stopped or rank in self.members:
            return
        node = self.machine.nodes[rank]
        if node.crashed:
            return  # a crashed standby node cannot power up
        # Power the node: a re-joining departed node was dark, but its
        # CPU was already reset to idle at darken time (see
        # _drain_and_depart), and a standby node's CPU is live — bumping
        # the CPU epoch here would void an in-flight burst and wedge the
        # node with _cpu_busy stuck on.
        node.departed = False
        node.membership = "joining"
        self._sponsors[rank] = None
        self._note(rank, "mem-advertise")
        self._advertise(rank)
        node.after(self.retry_period, self._retry_join, rank)

    def _advertise(self, rank: int) -> None:
        node = self.machine.nodes[rank]
        for peer in self.machine.topology.neighbors(rank):
            node.send(peer, ADVERTISE_KIND, rank, size=CTRL_BYTES)

    def _retry_join(self, rank: int) -> None:
        if self.stopped or rank in self.members:
            return
        node = self.machine.nodes[rank]
        if node.membership != "joining":
            return
        self._sponsors[rank] = None  # the old sponsor may be dark
        self._advertise(rank)
        node.after(self.retry_period, self._retry_join, rank)

    def _on_advertise(self, msg: Message) -> None:
        rank = msg.payload
        sponsor = msg.dest
        if not self._usable(sponsor) or rank in self.members:
            return
        self.machine.nodes[sponsor].send(
            rank, CLAIM_KIND, sponsor, size=CTRL_BYTES)

    def _on_claim(self, msg: Message) -> None:
        rank = msg.dest
        node = self.machine.nodes[rank]
        if node.membership != "joining" or self._sponsors.get(rank) is not None:
            return  # not joining (anymore), or already sponsored
        self._sponsors[rank] = msg.src
        node.send(msg.src, CLAIM_ACK_KIND, rank, size=CTRL_BYTES)

    def _on_claim_ack(self, msg: Message) -> None:
        rank = msg.payload
        sponsor = msg.dest
        if rank in self.members or not self._usable(sponsor):
            return
        if sponsor == self.root:
            self._on_admit(Message(sponsor, sponsor, ADMIT_KIND, rank,
                                   CTRL_BYTES))
        else:
            self.machine.nodes[sponsor].send(
                self.root, ADMIT_KIND, rank, size=CTRL_BYTES)

    def _on_admit(self, msg: Message) -> None:
        rank = msg.payload
        if (msg.dest != self.root or rank in self.members
                or self.machine.nodes[rank].membership != "joining"):
            return  # stale admit (root moved, or already committed)
        self._commit_join(rank)

    def _commit_join(self, rank: int) -> None:
        lost_before = self._losses()
        node = self.machine.nodes[rank]
        node.membership = "member"
        node.departed = False
        self.members.add(rank)
        self._sponsors.pop(rank, None)
        self.injector.transport.revive(rank)
        detector = self.injector.detector
        if detector is not None:
            detector.on_member_joined(rank)
        for cb in self.injector._joined_callbacks:
            cb(rank)
        self._commit("join", rank, lost_before)

    # ------------------------------------------------------------------
    # leave: depart -> depart_ack -> drain -> dark -> commit
    # ------------------------------------------------------------------
    def _start_leave(self, rank: int) -> None:
        if self.stopped or rank not in self.members:
            return
        node = self.machine.nodes[rank]
        if node.crashed or node.departed:
            return
        if rank == self.root:
            if len(self.usable_members()) <= 1:
                return  # the last usable member cannot leave
            # the root cannot drain through itself: elect a successor
            # first, then retry the leave (see _commit_election)
            if rank not in self._pending_leaves:
                self._pending_leaves.append(rank)
            self._start_election()
            return
        node.membership = "draining"
        self._note(rank, "mem-draining")
        self._send_depart(rank)
        node.after(self.retry_period, self._retry_leave, rank)

    def _send_depart(self, rank: int) -> None:
        self.machine.nodes[rank].send(
            self.root, DEPART_KIND, rank, size=CTRL_BYTES)

    def _retry_leave(self, rank: int) -> None:
        node = self.machine.nodes[rank]
        if self.stopped or rank not in self.members:
            return
        if node.membership != "draining" or node.crashed or node.departed:
            return
        self._send_depart(rank)  # the old root may be gone; retry current
        node.after(self.retry_period, self._retry_leave, rank)

    def _on_depart(self, msg: Message) -> None:
        rank = msg.payload
        if msg.dest != self.root or rank not in self.members:
            return
        if self.machine.nodes[rank].membership != "draining":
            return
        self.machine.nodes[msg.dest].send(
            rank, DEPART_ACK_KIND, rank, size=CTRL_BYTES)

    def _on_depart_ack(self, msg: Message) -> None:
        rank = msg.dest
        node = self.machine.nodes[rank]
        if (rank not in self.members or node.membership != "draining"
                or node.crashed or node.fenced or node.departed):
            return
        self._drain_and_depart(rank)

    def _drain_and_depart(self, rank: int) -> None:
        """The drain: hand everything off, go dark, commit the epoch.

        One synchronous step — task handoff cannot interleave with
        deliveries or crashes, which is what makes the zero-loss audit
        at this epoch boundary exact.
        """
        inj = self.injector
        node = self.machine.nodes[rank]
        lost_before = self._losses()
        # seal the transport first: in-flight reliable payloads to the
        # leaver surface here and are handed off with everything else
        # (their wire copies are poisoned, so no double execution)
        inj._undelivered[rank] = inj.transport.handle_crash(rank)
        handed = 0
        for cb in inj._departing_callbacks:
            handed += cb(rank)
        # dark: by choice, after the handoff — nothing was lost
        node.membership = "left"
        node.departed = True
        node._cpu_queue.clear()
        node._cpu_busy = False
        node._cpu_epoch += 1
        self.members.discard(rank)
        detector = inj.detector
        if detector is not None:
            detector.on_member_left(rank)
        self._commit("leave", rank, lost_before, {"handed_off": handed})

    # ------------------------------------------------------------------
    # election: elect -> elect_ack quorum -> commit
    # ------------------------------------------------------------------
    def _candidate(self, inc: int) -> Optional[int]:
        usable = self.usable_members()
        if not usable:
            return None
        return usable[inc % len(usable)]

    def _start_election(self) -> None:
        if self.stopped:
            return
        inc = self._max_inc + 1
        candidate = self._candidate(inc)
        if candidate is None:
            return
        self._max_inc = inc
        self._election_wanted = True
        self._votes[inc] = {candidate}
        self._note(candidate, "mem-elect",
                   args={"incarnation": inc, "candidate": candidate})
        cand_node = self.machine.nodes[candidate]
        others = [r for r in sorted(self.members) if r != candidate]
        if not others:
            self._maybe_commit_election(inc, candidate)
            return
        for member in others:
            cand_node.send(member, ELECT_KIND, (inc, candidate),
                           size=CTRL_BYTES)
        cand_node.after(self.retry_period, self._retry_election, inc)

    def _retry_election(self, inc: int) -> None:
        if self.stopped or not self._election_wanted:
            return
        if self.root_incarnation >= inc:
            return  # this (or a later) election already committed
        self._start_election()  # fresh incarnation; stale acks can't mix

    def _on_elect(self, msg: Message) -> None:
        inc, candidate = msg.payload
        rank = msg.dest
        if inc <= self._acked_inc[rank] or inc <= self.root_incarnation:
            return  # already promised this incarnation (or it is stale)
        self._acked_inc[rank] = inc
        self.machine.nodes[rank].send(
            candidate, ELECT_ACK_KIND, (inc, rank), size=CTRL_BYTES)

    def _on_elect_ack(self, msg: Message) -> None:
        inc, voter = msg.payload
        candidate = msg.dest
        votes = self._votes.get(inc)
        if votes is None or self.root_incarnation >= inc:
            return
        votes.add(voter)
        self._maybe_commit_election(inc, candidate)

    def _maybe_commit_election(self, inc: int, candidate: int) -> None:
        votes = self._votes.get(inc, set())
        quorum = len(self.usable_members()) // 2 + 1
        if len(votes) < quorum:
            return
        self._commit_election(inc, candidate)

    def _commit_election(self, inc: int, candidate: int) -> None:
        lost_before = self._losses()
        self._votes.pop(inc, None)
        self._election_wanted = False
        old_root = self.root
        self.root = candidate
        self.root_incarnation = inc
        for cb in self.injector._membership_callbacks:
            cb("election")
        self._commit("election", candidate, lost_before,
                     {"old_root": old_root})
        # a leave that was blocked on being root can proceed now
        pending = [r for r in self._pending_leaves if r != self.root]
        self._pending_leaves = [r for r in self._pending_leaves
                                if r == self.root]
        for rank in pending:
            self.machine.sim.schedule(0.0, self._start_leave, rank)

    # ------------------------------------------------------------------
    def _on_crash_detected(self, rank: int) -> None:
        """A (possibly false) death declaration: if it took the root,
        elect a successor so joins/leaves/phases keep a live coordinator."""
        if rank == self.root and len(self.usable_members()) >= 1:
            self._start_election()
