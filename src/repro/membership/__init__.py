"""Elastic membership: runtime join/leave and deterministic root election.

See :mod:`repro.membership.manager` for the protocol.  The package is
only imported when a :class:`~repro.faults.plan.FaultPlan` carries
membership events (``standby``/``joins``/``leaves``/``elections``), so
static-membership runs never touch these code paths.
"""

from .manager import (
    ADVERTISE_KIND,
    CLAIM_ACK_KIND,
    CLAIM_KIND,
    MembershipManager,
)

__all__ = [
    "MembershipManager",
    "ADVERTISE_KIND",
    "CLAIM_KIND",
    "CLAIM_ACK_KIND",
]
