"""Disk cache for workload traces.

Generating a trace means actually running the application (solving
14-Queens takes ~10 s of real CPU), but the trace is a pure function of
the application parameters — so we pickle it once and reuse it across
strategies, machine sizes, test runs, and benchmark runs.  The cache
directory defaults to ``<repo>/.trace_cache`` and can be moved with the
``REPRO_TRACE_CACHE`` environment variable.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Callable

from repro.tasks.trace import WorkloadTrace

__all__ = [
    "trace_cache_dir",
    "cached_trace",
    "clear_trace_cache",
    "trace_cache_stats",
    "TRACE_FORMAT_VERSION",
]

_ENV_VAR = "REPRO_TRACE_CACHE"

#: Bump when the pickled trace layout (or its generation semantics)
#: changes; it is part of the cache key, so stale pickles from older code
#: simply stop being found instead of being unpickled into wrong shapes.
TRACE_FORMAT_VERSION = 2


def trace_cache_dir() -> Path:
    """Resolve (and create) the cache directory."""
    env = os.environ.get(_ENV_VAR)
    if env:
        path = Path(env)
    else:
        path = Path(__file__).resolve().parents[3] / ".trace_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _key(name: str, params: dict) -> str:
    # Canonical JSON, not repr: repr-based keys collide whenever two
    # distinct values render identically once embedded in a string (and
    # conversely split the cache for values with unstable reprs).  JSON
    # keeps 1 vs "1" distinct; ``default=repr`` covers non-JSON values.
    blob = json.dumps(
        {"name": name, "params": params, "format": TRACE_FORMAT_VERSION},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    ).encode()
    return f"{name}-{hashlib.sha256(blob).hexdigest()[:16]}"


def cached_trace(
    name: str, params: dict, build: Callable[[], WorkloadTrace]
) -> WorkloadTrace:
    """Return the cached trace for (name, params), building it if needed."""
    path = trace_cache_dir() / (_key(name, params) + ".pkl")
    if path.exists():
        try:
            with path.open("rb") as fh:
                trace = pickle.load(fh)
            if isinstance(trace, WorkloadTrace):
                return trace
        except Exception:
            path.unlink(missing_ok=True)  # corrupt cache entry: rebuild
    trace = build()
    # unique tmp per writer: parallel grid workers may build the same trace
    # concurrently, and a shared tmp path would interleave their writes
    tmp = Path(f"{path}.{os.getpid()}.tmp")
    with tmp.open("wb") as fh:
        pickle.dump(trace, fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(path)
    return trace


def clear_trace_cache() -> int:
    """Delete all cached traces; returns the number removed."""
    removed = 0
    for p in trace_cache_dir().glob("*.pkl"):
        p.unlink()
        removed += 1
    return removed


def trace_cache_stats() -> dict:
    """Entry count and total bytes of the on-disk trace cache."""
    entries = list(trace_cache_dir().glob("*.pkl"))
    return {
        "dir": str(trace_cache_dir()),
        "entries": len(entries),
        "bytes": sum(p.stat().st_size for p in entries),
        "format_version": TRACE_FORMAT_VERSION,
    }
