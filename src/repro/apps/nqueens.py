"""Exhaustive N-Queens search — the paper's first test application.

"The exhaustive search of the N-queens problem has an irregular and
dynamic structure.  The number of tasks generated and the computation
amount in each task are unpredictable."

The parallel decomposition is the classic prefix split (Feeley-style):
the search tree is expanded breadth-first down to ``split_depth``; every
consistent placement of the first ``split_depth`` queens becomes an
independent *solver task* that exhausts its subtree sequentially.  The
interior prefix nodes are cheap *expander tasks* whose children are the
next level — so tasks really are generated dynamically, level by level,
exactly the structure the balancers see on the real machine.

Work units are **search-tree node visits** of the real backtracking
solver (bitmask representation: one bit per attacked column/diagonal).
The default ``sec_per_unit`` of 2 microseconds/visit calibrates total
sequential time to the same ballpark as the paper's i860 Paragon runs
(15-Queens: a few hundred seconds sequential; see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tasks.trace import TraceTask, WorkloadTrace
from .cache import cached_trace

__all__ = ["QueensConfig", "nqueens_trace", "solve_queens", "count_solutions"]

#: seconds of simulated CPU per search-tree node visit
SEC_PER_VISIT = 2e-6


@dataclass(frozen=True)
class QueensConfig:
    """Parameters of one N-Queens workload."""

    n: int = 13
    split_depth: int = 4

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if not 0 <= self.split_depth <= self.n:
            raise ValueError("split_depth must be in [0, n]")


def solve_queens(n: int, cols: int = 0, d1: int = 0, d2: int = 0) -> tuple[int, int]:
    """Count solutions and node visits of the subtree rooted at a partial
    placement (bitmask state).  Returns ``(solutions, visits)``."""
    full = (1 << n) - 1
    sols = 0
    visits = 0

    def rec(c: int, l: int, r: int) -> None:
        nonlocal sols, visits
        visits += 1
        if c == full:
            sols += 1
            return
        free = full & ~(c | l | r)
        while free:
            bit = free & -free
            free ^= bit
            rec(c | bit, ((l | bit) << 1) & full, (r | bit) >> 1)

    rec(cols, d1, d2)
    return sols, visits


def count_solutions(n: int) -> int:
    """Total solutions of the n-queens problem (reference oracle)."""
    return solve_queens(n)[0]


def _build(config: QueensConfig) -> WorkloadTrace:
    n = config.n
    full = (1 << n) - 1
    tasks: list[TraceTask] = []

    # Expand the prefix tree breadth-first.  Each frontier entry is
    # (task_id, cols, d1, d2); ids are assigned in BFS order so parents
    # precede children.
    root_id = 0
    tasks.append(None)  # type: ignore[arg-type]  # placeholder, fixed below
    frontier = [(root_id, 0, 0, 0)]
    next_id = 1
    for depth in range(config.split_depth):
        new_frontier = []
        for (tid, c, l, r) in frontier:
            free = full & ~(c | l | r)
            child_ids = []
            states = []
            while free:
                bit = free & -free
                free ^= bit
                child_ids.append(next_id)
                states.append(
                    (next_id, c | bit, ((l | bit) << 1) & full, (r | bit) >> 1)
                )
                next_id += 1
            # expander work: generating the children (1 visit + 1/child)
            tasks[tid] = TraceTask(
                tid, work=1.0 + len(child_ids), children=tuple(child_ids),
                label=f"expand-d{depth}",
            )
            for st in states:
                tasks.append(None)  # type: ignore[arg-type]
            new_frontier.extend(states)
        frontier = new_frontier

    solutions = 0
    for (tid, c, l, r) in frontier:
        sols, visits = solve_queens(n, c, l, r)
        solutions += sols
        tasks[tid] = TraceTask(tid, work=float(visits), label="solve")

    trace = WorkloadTrace(
        f"{n}-queens",
        tasks,
        sec_per_unit=SEC_PER_VISIT,
        description=(
            f"exhaustive {n}-queens, prefix split at depth "
            f"{config.split_depth}; {solutions} solutions"
        ),
    )
    return trace


def nqueens_trace(n: int = 13, split_depth: int = 4, use_cache: bool = True) -> WorkloadTrace:
    """Workload trace for exhaustive N-Queens (disk-cached by default)."""
    config = QueensConfig(n=n, split_depth=split_depth)
    params = {"n": n, "split_depth": split_depth, "v": 1}
    if not use_cache:
        return _build(config)
    return cached_trace("nqueens", params, lambda: _build(config))
