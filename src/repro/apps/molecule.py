"""Synthetic SOD-like molecule generator.

The paper's GROMOS runs use bovine superoxide dismutase (SOD), 6968
atoms, with nonbonded cutoffs of 8, 12 and 16 Angstroms.  We do not have
the PDB-derived coordinates, so we generate a synthetic molecule with
the properties that matter to the *scheduler* (see DESIGN.md §2):

* the same atom count;
* a clustered, non-uniform density (SOD is a homodimer; we sample atoms
  from several Gaussian blobs plus a diffuse solvent fraction), so
  per-charge-group pair counts — and hence task grain sizes — vary a
  lot;
* charge groups of a few atoms each, the unit of work distribution in
  GROMOS-style MD.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Molecule", "synthetic_sod"]


@dataclass
class Molecule:
    """Atom coordinates plus the charge-group partition."""

    positions: np.ndarray  # (n_atoms, 3) float64, Angstroms
    #: ``group_index[a]`` = charge group of atom ``a``
    group_index: np.ndarray  # (n_atoms,) int64
    box: float  # cubic box edge length, Angstroms

    def __post_init__(self) -> None:
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions must be (n, 3)")
        if self.group_index.shape != (self.positions.shape[0],):
            raise ValueError("group_index must be (n,)")

    @property
    def n_atoms(self) -> int:
        return self.positions.shape[0]

    @property
    def n_groups(self) -> int:
        return int(self.group_index.max()) + 1 if self.n_atoms else 0

    def group_centers(self) -> np.ndarray:
        """(n_groups, 3) centroid of each charge group."""
        n_groups = self.n_groups
        sums = np.zeros((n_groups, 3))
        counts = np.zeros(n_groups)
        np.add.at(sums, self.group_index, self.positions)
        np.add.at(counts, self.group_index, 1.0)
        return sums / counts[:, None]

    def perturb(self, sigma: float, rng: np.random.Generator) -> "Molecule":
        """One MD-timestep's worth of positional drift (for multi-step
        workloads): Gaussian displacement, clipped to the box."""
        pos = self.positions + rng.normal(0.0, sigma, self.positions.shape)
        pos = np.clip(pos, 0.0, self.box)
        return Molecule(pos, self.group_index, self.box)


def synthetic_sod(
    n_atoms: int = 6968,
    n_groups: int = 4986,
    box: float = 64.0,
    seed: int = 2026,
) -> Molecule:
    """Generate the SOD stand-in: 4 dense lobes + a diffuse shell.

    The group partition interleaves lobes so that a *geometric* block
    distribution of groups (the SPMD pre-placement the paper's GROMOS
    uses) still sees per-group density variation — the load imbalance
    the balancers must fix.
    """
    if not 1 <= n_groups <= n_atoms:
        raise ValueError("need 1 <= n_groups <= n_atoms")
    rng = np.random.default_rng(seed)
    # four lobes (two subunits x two domains), ~70% of atoms.  The lobe
    # width and the 30% diffuse fraction keep the per-group interaction
    # counts within roughly a factor of four of each other — a realistic
    # density contrast for a solvated protein (an all-vacuum corner with
    # near-zero neighbors would not occur in the real SOD system).
    lobe_centers = np.array(
        [
            [0.32, 0.35, 0.40],
            [0.62, 0.40, 0.55],
            [0.40, 0.64, 0.62],
            [0.66, 0.68, 0.38],
        ]
    ) * box
    lobe_sigma = 0.15 * box
    n_core = int(0.3 * n_atoms)
    lobe_of = rng.integers(0, 4, size=n_core)
    core = lobe_centers[lobe_of] + rng.normal(0.0, lobe_sigma, (n_core, 3))
    # solvent-like diffuse fraction filling the (periodic) box: a
    # solvated system has near-uniform background density, so per-group
    # interaction counts vary by a factor of ~2-4, not orders of
    # magnitude; the lobes provide the protein-core density excess
    n_diffuse = n_atoms - n_core
    diffuse = rng.uniform(0.0, box, (n_diffuse, 3))
    positions = np.mod(np.vstack([core, diffuse]), box)
    # charge groups: sort atoms along a space-filling-ish key (z-order on
    # coarse cells) so groups are spatially compact, then chunk evenly.
    cells = np.floor(positions / box * 16).astype(np.int64).clip(0, 15)
    key = (cells[:, 0] << 8) | (cells[:, 1] << 4) | cells[:, 2]
    order = np.argsort(key, kind="stable")
    group_index = np.empty(n_atoms, dtype=np.int64)
    # contiguous chunks of nearly equal size over the sorted order
    bounds = np.linspace(0, n_atoms, n_groups + 1).astype(np.int64)
    for g in range(n_groups):
        group_index[order[bounds[g]:bounds[g + 1]]] = g
    return Molecule(positions=positions, group_index=group_index, box=box)
