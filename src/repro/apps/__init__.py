"""The paper's three applications, regenerated as workload traces."""

from .cache import cached_trace, clear_trace_cache, trace_cache_dir
from .gromos import GromosConfig, gromos_trace, pair_counts
from .idastar import IDAStarConfig, PAPER_CONFIGS, ida_star_sequential, idastar_trace
from .molecule import Molecule, synthetic_sod
from .nqueens import QueensConfig, count_solutions, nqueens_trace, solve_queens

__all__ = [
    "GromosConfig",
    "IDAStarConfig",
    "Molecule",
    "PAPER_CONFIGS",
    "QueensConfig",
    "cached_trace",
    "clear_trace_cache",
    "count_solutions",
    "gromos_trace",
    "ida_star_sequential",
    "idastar_trace",
    "nqueens_trace",
    "pair_counts",
    "solve_queens",
    "synthetic_sod",
    "trace_cache_dir",
]
