"""The 15-puzzle: board representation and Manhattan-distance heuristic.

The board is a tuple of 16 ints; value 0 is the blank; the goal is
``(1, 2, ..., 15, 0)``.  Everything IDA* needs — heuristic, move
generation, solvability — lives here; the search itself is in
:mod:`repro.apps.idastar`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "GOAL",
    "manhattan",
    "neighbors",
    "is_solvable",
    "random_walk_instance",
    "apply_move",
]

SIDE = 4
GOAL: tuple[int, ...] = tuple(list(range(1, 16)) + [0])

#: goal position (row, col) of each tile value
_GOAL_POS = {v: divmod(i, SIDE) for i, v in enumerate(GOAL)}

# precomputed neighbor cells of each blank position
_MOVES: list[tuple[int, ...]] = []
for idx in range(16):
    r, c = divmod(idx, SIDE)
    opts = []
    if r > 0:
        opts.append(idx - SIDE)
    if r < SIDE - 1:
        opts.append(idx + SIDE)
    if c > 0:
        opts.append(idx - 1)
    if c < SIDE - 1:
        opts.append(idx + 1)
    _MOVES.append(tuple(opts))


def manhattan(board: Sequence[int]) -> int:
    """Sum of Manhattan distances of all tiles to their goal cells.

    Admissible and consistent — IDA* with this heuristic is optimal.
    """
    total = 0
    for i, v in enumerate(board):
        if v:
            r, c = divmod(i, SIDE)
            gr, gc = _GOAL_POS[v]
            total += abs(r - gr) + abs(c - gc)
    return total


def apply_move(board: tuple[int, ...], blank: int, dest: int) -> tuple[int, ...]:
    """Slide the tile at ``dest`` into the blank at ``blank``."""
    lst = list(board)
    lst[blank], lst[dest] = lst[dest], lst[blank]
    return tuple(lst)


def neighbors(board: tuple[int, ...]) -> Iterator[tuple[tuple[int, ...], int]]:
    """Yield ``(next_board, moved_from)`` for every legal slide."""
    blank = board.index(0)
    for dest in _MOVES[blank]:
        yield apply_move(board, blank, dest), dest


def is_solvable(board: Sequence[int]) -> bool:
    """Parity test: permutation parity + blank row distance must be even."""
    perm = [v for v in board if v]
    inversions = sum(
        1
        for i in range(len(perm))
        for j in range(i + 1, len(perm))
        if perm[i] > perm[j]
    )
    blank_row = board.index(0) // SIDE
    # goal blank is at row 3; distance parity must match inversion parity
    return (inversions + (SIDE - 1 - blank_row)) % 2 == 0


def random_walk_instance(steps: int, seed: int) -> tuple[int, ...]:
    """A solvable instance ``steps`` random slides away from the goal.

    The optimal solution length is at most ``steps`` (usually less); the
    walk avoids immediately undoing the previous move so the distance
    grows close to linearly at first.
    """
    rng = np.random.default_rng(seed)
    board = GOAL
    prev_blank = -1
    for _ in range(steps):
        blank = board.index(0)
        opts = [d for d in _MOVES[blank] if d != prev_blank]
        dest = int(opts[rng.integers(len(opts))])
        board = apply_move(board, blank, dest)
        prev_blank = blank
    assert is_solvable(board)
    return board
