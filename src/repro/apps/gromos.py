"""Synthetic GROMOS nonbonded workload — the paper's third application.

"GROMOS has a more predictable structure.  The number of processes is
known with the given input data, but the computation density in each
process varies.  Thus, a load balancing mechanism is necessary."

One task per charge group computes the nonbonded interactions of that
group: its work is the number of atom pairs within the cutoff radius
(computed for real with a cell list over the synthetic SOD molecule).
Tasks are **pre-placed block-wise by group index** — the SPMD geometric
decomposition a data-parallel GROMOS uses — so the initial placement is
count-balanced but *work*-imbalanced, exactly the situation where
incremental rescheduling of leftover tasks pays off.

``timesteps > 1`` produces a multi-wave trace where positions drift a
little between steps (each step's group task is the cross-wave child of
the same group's task in the previous step, so it starts on whatever
node last executed it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tasks.trace import TraceTask, WorkloadTrace
from .cache import cached_trace
from .molecule import Molecule, synthetic_sod

__all__ = ["GromosConfig", "gromos_trace", "pair_counts"]

#: seconds of simulated CPU per atom pair inside the cutoff.  Calibrated
#: so that the 8 A workload's sequential time lands near the paper's
#: (~57 s => ~11 ms per charge-group task on average).
SEC_PER_PAIR = 170e-6


@dataclass(frozen=True)
class GromosConfig:
    """One GROMOS workload: cutoff radius + machine pre-placement."""

    cutoff: float = 8.0  # Angstroms
    num_nodes: int = 32  # for the block pre-placement
    timesteps: int = 1
    n_atoms: int = 6968
    n_groups: int = 4986
    seed: int = 2026

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if self.timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")


def pair_counts(mol: Molecule, cutoff: float, periodic: bool = True) -> np.ndarray:
    """Atoms within ``cutoff`` of each charge-group centroid.

    This is the per-group nonbonded work measure: a group's interaction
    list length.  Computed with a uniform cell list (cell edge >=
    cutoff) — the same data structure an MD code uses.  With
    ``periodic`` (the default, as in a real solvated MD box) distances
    use the minimum-image convention, so there is no artificial density
    falloff at the box faces.
    """
    centers = mol.group_centers()
    pos = mol.positions
    box = mol.box
    ncell = max(1, int(box / cutoff))
    if periodic and ncell < 3:
        ncell = 1  # degenerate box: brute force over everything
    cell_edge = box / ncell
    atom_cells = np.floor(pos / cell_edge).astype(np.int64).clip(0, ncell - 1)
    atom_key = (atom_cells[:, 0] * ncell + atom_cells[:, 1]) * ncell + atom_cells[:, 2]
    order = np.argsort(atom_key, kind="stable")
    sorted_keys = atom_key[order]
    sorted_pos = pos[order]
    # bucket boundaries per cell key
    starts = np.searchsorted(sorted_keys, np.arange(ncell ** 3))
    ends = np.searchsorted(sorted_keys, np.arange(ncell ** 3), side="right")

    counts = np.zeros(centers.shape[0], dtype=np.int64)
    c2 = cutoff * cutoff
    ccell = np.floor(centers / cell_edge).astype(np.int64).clip(0, ncell - 1)

    def cell_range(c: int) -> list[int]:
        if periodic:
            # wrapped, de-duplicated (ncell < 3 would otherwise visit a
            # cell more than once and double-count)
            return sorted({(c + d) % ncell for d in (-1, 0, 1)})
        return list(range(max(c - 1, 0), min(c + 2, ncell)))

    for g in range(centers.shape[0]):
        cx, cy, cz = ccell[g]
        total = 0
        for x in cell_range(cx):
            for y in cell_range(cy):
                for z in cell_range(cz):
                    key = (x * ncell + y) * ncell + z
                    s, e = starts[key], ends[key]
                    if s == e:
                        continue
                    d = sorted_pos[s:e] - centers[g]
                    if periodic:
                        d -= box * np.round(d / box)
                    total += int(np.count_nonzero(
                        (d * d).sum(axis=1) <= c2
                    ))
        counts[g] = total
    return counts


def _build(config: GromosConfig) -> WorkloadTrace:
    mol = synthetic_sod(config.n_atoms, config.n_groups, seed=config.seed)
    rng = np.random.default_rng(config.seed + 1)
    n_groups = config.n_groups
    n_nodes = config.num_nodes
    tasks: list[TraceTask] = []
    prev_wave_ids: list[int] = []
    for step in range(config.timesteps):
        if step > 0:
            mol = mol.perturb(sigma=0.15, rng=rng)
        counts = pair_counts(mol, config.cutoff)
        ids = list(range(len(tasks), len(tasks) + n_groups))
        for g in range(n_groups):
            home = g * n_nodes // n_groups if step == 0 else None
            tasks.append(
                TraceTask(
                    ids[g],
                    work=float(max(counts[g], 1)),
                    wave=step,
                    home=home,
                    data_bytes=2048,  # group coords + pair-list segment
                    label=f"group-{g}-step{step}",
                )
            )
        if prev_wave_ids:
            # chain each group to its previous-step task (location inherit)
            for g in range(n_groups):
                prev = tasks[prev_wave_ids[g]]
                tasks[prev_wave_ids[g]] = TraceTask(
                    prev.id, prev.work, prev.wave,
                    prev.children + (ids[g],), prev.pinned, prev.home,
                    prev.data_bytes, prev.label,
                )
        prev_wave_ids = ids

    return WorkloadTrace(
        f"gromos-{config.cutoff:g}A",
        tasks,
        sec_per_unit=SEC_PER_PAIR,
        description=(
            f"synthetic SOD ({config.n_atoms} atoms, {n_groups} charge "
            f"groups), cutoff {config.cutoff:g} A, "
            f"{config.timesteps} timestep(s), block pre-placement on "
            f"{n_nodes} nodes"
        ),
    )


def gromos_trace(
    cutoff: float = 8.0,
    num_nodes: int = 32,
    timesteps: int = 1,
    use_cache: bool = True,
    **kwargs,
) -> WorkloadTrace:
    """Workload trace for the synthetic GROMOS run (disk-cached)."""
    config = GromosConfig(cutoff=cutoff, num_nodes=num_nodes,
                          timesteps=timesteps, **kwargs)
    params = {
        "cutoff": config.cutoff,
        "nodes": config.num_nodes,
        "steps": config.timesteps,
        "atoms": config.n_atoms,
        "groups": config.n_groups,
        "seed": config.seed,
        "v": 1,
    }
    if not use_cache:
        return _build(config)
    return cached_trace("gromos", params, lambda: _build(config))
