"""Parallel IDA* search on the 15-puzzle — the paper's second application.

"Iterative deepening A* (IDA*) search is a good example of parallel
search techniques.  The sample problem is the 15-puzzle with three
different configurations.  The grain size may vary substantially, since
it dynamically depends on the currently estimated cost.  Also,
synchronization at each iteration reduces the effective parallelism."

Structure of the generated trace (one *wave* per IDA* iteration):

* a **driver task**, pinned to rank 0, re-expands the search root for
  the iteration.  It is sequential and pinned: this is the per-
  iteration synchronization bottleneck the paper blames for IDA*'s low
  efficiencies.  The next iteration's driver is a cross-wave child of
  the current one, so iterations are separated by a global barrier.
* **dynamically split search tasks**: a task owns a subtree of the
  cost-bounded (``f = g + h <= threshold``) search tree.  If the
  subtree is larger than ``split_budget`` node visits, the task acts as
  an *expander* — it spawns one child task per successor and does only
  the expansion work itself; otherwise it searches its subtree to
  exhaustion.  This is the recursive, on-demand task generation a real
  parallel IDA* uses ("the number of tasks generated ... are
  unpredictable"), and it bounds the task grain near ``split_budget``
  regardless of how lopsided the search tree is.

The search is *real*: thresholds, spawn structure and visit counts come
from actually running IDA* with the Manhattan heuristic.  Instances are
random-walk configurations (see DESIGN.md on the substitution for
Korf's instances); config #1 < #2 < #3 in difficulty, mirroring the
paper's three configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.tasks.trace import TraceTask, WorkloadTrace
from .cache import cached_trace
from .puzzle import GOAL, SIDE, _GOAL_POS, _MOVES, manhattan, random_walk_instance

__all__ = ["IDAStarConfig", "PAPER_CONFIGS", "idastar_trace", "ida_star_sequential"]

#: seconds of simulated CPU per search node.  Calibrated so the three
#: configs' sequential times land in the paper's ballpark (about 7 s /
#: 32 s / 66 s; the paper's configs are roughly 10 s / 30 s / 150 s).
SEC_PER_VISIT = 6e-6

#: never split deeper than this many plies below the iteration root —
#: beyond it a subtree is searched in one task even if it exceeds the
#: budget (runaway fragmentation guard)
SPLIT_DEPTH_LIMIT = 28


@dataclass(frozen=True)
class IDAStarConfig:
    """One 15-puzzle workload (a random-walk instance + task grain)."""

    walk_steps: int
    seed: int
    #: subtree size (in node visits) above which a task splits
    split_budget: int = 400
    max_iterations: int = 40

    def __post_init__(self) -> None:
        if self.split_budget < 1:
            raise ValueError("split_budget must be >= 1")

    def board(self) -> tuple[int, ...]:
        return random_walk_instance(self.walk_steps, self.seed)


#: the three configurations standing in for the paper's config #1..#3
#: (instance difficulty approximately 1.1M / 5.4M / 11M search nodes,
#: solved at depth 46 / 44 / 50, each in 8 iterations)
PAPER_CONFIGS: dict[int, IDAStarConfig] = {
    1: IDAStarConfig(walk_steps=56, seed=23, split_budget=400),
    2: IDAStarConfig(walk_steps=64, seed=35, split_budget=400),
    3: IDAStarConfig(walk_steps=64, seed=5, split_budget=400),
}


def _bounded_dfs(board: tuple[int, ...], g: int, h: int, threshold: int,
                 prev_blank: int) -> tuple[int, float, bool]:
    """Cost-bounded DFS.  Returns (min_exceed, visits, found).

    ``min_exceed`` is the smallest f that crossed the threshold (the
    next iteration's threshold candidate), or a large sentinel if the
    subtree was exhausted.
    """
    visits = 1
    if h == 0:
        return threshold, visits, True
    min_exceed = 1 << 30
    blank = board.index(0)
    lst = list(board)
    for dest in _MOVES[blank]:
        if dest == prev_blank:
            continue
        tile = lst[dest]
        gr, gc = _GOAL_POS[tile]
        # incremental Manhattan update for sliding `tile` into `blank`
        dr, dc = divmod(dest, SIDE)
        br, bc = divmod(blank, SIDE)
        old_d = abs(dr - gr) + abs(dc - gc)
        new_d = abs(br - gr) + abs(bc - gc)
        nh = h - old_d + new_d
        nf = g + 1 + nh
        if nf > threshold:
            if nf < min_exceed:
                min_exceed = nf
            continue
        lst[blank], lst[dest] = tile, 0
        sub_exceed, sub_visits, found = _bounded_dfs(
            tuple(lst), g + 1, nh, threshold, blank
        )
        lst[dest], lst[blank] = tile, 0
        visits += sub_visits
        if found:
            return threshold, visits, True
        if sub_exceed < min_exceed:
            min_exceed = sub_exceed
    return min_exceed, visits, False


def ida_star_sequential(board: tuple[int, ...], max_iterations: int = 60
                        ) -> tuple[int, float, int]:
    """Plain sequential IDA*.  Returns (solution_depth, visits, iterations).

    Reference implementation used by the tests to check that the
    parallel decomposition searches the same tree.
    """
    h0 = manhattan(board)
    threshold = h0
    visits = 0.0
    for it in range(1, max_iterations + 1):
        exceed, v, found = _bounded_dfs(board, 0, h0, threshold, -1)
        visits += v
        if found:
            return threshold, visits, it
        if exceed >= (1 << 30):
            raise RuntimeError("search space exhausted without a solution")
        threshold = exceed
    raise RuntimeError("max_iterations exceeded")


class _Annotated:
    """A shallow annotated node of one iteration's search tree."""

    __slots__ = ("visits", "children", "exceed", "found")

    def __init__(self) -> None:
        self.visits = 1
        self.children: Optional[list["_Annotated"]] = None
        self.exceed = 1 << 30
        self.found = False


def _annotated_dfs(board: tuple[int, ...], g: int, h: int, threshold: int,
                   prev_blank: int, depth_budget: int,
                   split_budget: int) -> _Annotated:
    """Cost-bounded DFS that keeps per-child subtree sizes down to
    ``depth_budget`` plies (one pass; below the budget it degenerates to
    the plain counting DFS)."""
    node = _Annotated()
    if h == 0:
        node.exceed = threshold
        node.found = True
        return node
    blank = board.index(0)
    lst = list(board)
    children: list[_Annotated] = []
    for dest in _MOVES[blank]:
        if dest == prev_blank:
            continue
        tile = lst[dest]
        gr, gc = _GOAL_POS[tile]
        dr, dc = divmod(dest, SIDE)
        br, bc = divmod(blank, SIDE)
        nh = h - (abs(dr - gr) + abs(dc - gc)) + (abs(br - gr) + abs(bc - gc))
        nf = g + 1 + nh
        if nf > threshold:
            if nf < node.exceed:
                node.exceed = nf
            continue
        lst[blank], lst[dest] = tile, 0
        child_board = tuple(lst)
        lst[dest], lst[blank] = tile, 0
        if depth_budget > 1:
            child = _annotated_dfs(child_board, g + 1, nh, threshold, blank,
                                   depth_budget - 1, split_budget)
        else:
            child = _Annotated()
            child.exceed, child.visits, child.found = _bounded_dfs(
                child_board, g + 1, nh, threshold, blank
            )
        children.append(child)
        node.visits += child.visits
        node.found = node.found or child.found
        if child.exceed < node.exceed:
            node.exceed = child.exceed
        if node.found:
            break
    # memory guard: a subtree at or below the split budget becomes one
    # task anyway, so its internal annotation is dead weight — dropping
    # it here keeps the retained skeleton at O(total_visits / budget)
    # nodes instead of O(total_visits)
    node.children = None if node.visits <= split_budget else children
    return node


def _build(config: IDAStarConfig) -> WorkloadTrace:
    board = config.board()
    h0 = manhattan(board)
    threshold = h0
    budget = config.split_budget
    tasks: list[TraceTask] = []
    prev_driver: Optional[int] = None
    found = False

    for wave in range(config.max_iterations):
        root = _annotated_dfs(board, 0, h0, threshold, -1, SPLIT_DEPTH_LIMIT,
                              budget)
        found = root.found

        driver_id = len(tasks)
        tasks.append(None)  # type: ignore[arg-type]  # placeholder

        def emit(node: _Annotated, wave: int) -> int:
            """Emit the task (sub)tree for an annotated node; returns id."""
            tid = len(tasks)
            tasks.append(None)  # type: ignore[arg-type]
            if node.visits <= budget or not node.children:
                tasks[tid] = TraceTask(
                    tid, work=float(node.visits), wave=wave,
                    label="ida-search",
                )
            else:
                child_ids = tuple(emit(c, wave) for c in node.children)
                tasks[tid] = TraceTask(
                    tid, work=float(1 + len(child_ids)), wave=wave,
                    children=child_ids, label="ida-expand",
                )
            return tid

        # the driver owns the iteration root's expansion; its children
        # are the root's successors (or, for a tiny iteration, a single
        # search task covering the whole tree)
        if root.visits <= budget or not root.children:
            leaf_id = len(tasks)
            tasks.append(
                TraceTask(leaf_id, work=float(root.visits), wave=wave,
                          label="ida-search")
            )
            search_ids = (leaf_id,)
        else:
            search_ids = tuple(emit(c, wave) for c in root.children)
        tasks[driver_id] = TraceTask(
            driver_id,
            work=float(1 + len(search_ids)),
            wave=wave,
            children=search_ids,
            pinned=0,
            label=f"ida-driver-t{threshold}",
        )

        if prev_driver is not None:
            prev = tasks[prev_driver]
            tasks[prev_driver] = TraceTask(
                prev.id, prev.work, prev.wave,
                prev.children + (driver_id,), prev.pinned, prev.home,
                prev.data_bytes, prev.label,
            )
        prev_driver = driver_id
        if found:
            break
        if root.exceed >= (1 << 30):
            raise RuntimeError("search space exhausted without a solution")
        threshold = root.exceed
    else:
        raise RuntimeError("max_iterations exceeded while building IDA* trace")

    return WorkloadTrace(
        f"ida-{config.walk_steps}-{config.seed}",
        tasks,
        sec_per_unit=SEC_PER_VISIT,
        description=(
            f"IDA* 15-puzzle, walk={config.walk_steps} seed={config.seed}, "
            f"h0={h0}, solved at threshold {threshold}, "
            f"{len(tasks)} tasks in {tasks[-1].wave + 1 if tasks else 0} "
            f"iterations, split budget {budget} visits"
        ),
    )


def idastar_trace(config: IDAStarConfig | int, use_cache: bool = True) -> WorkloadTrace:
    """Workload trace for parallel IDA* (config number 1-3 or explicit)."""
    if isinstance(config, int):
        config = PAPER_CONFIGS[config]
    params = {
        "walk": config.walk_steps,
        "seed": config.seed,
        "budget": config.split_budget,
        "v": 2,
    }
    if not use_cache:
        return _build(config)
    return cached_trace("idastar", params, lambda: _build(config))
