"""Cross-shard traffic interception at the network layer.

The :class:`ShardRouter` hangs off a network's ``shard_router`` hook
(:mod:`repro.machine.network`) for the duration of a sharded run.  Every
non-loopback ``transmit`` reports ``(msg, send_time, arrival_time)``;
the router classifies it intra- vs cross-shard, appends cross-shard
traffic to the open batch of the *send* window, and checks the
conservative invariant (arrival strictly after the send window closes).

In-process sharded strategy runs execute on one simulator in exact
serial event order, so the router is **observation-only**: it never
delays, reorders, or re-delivers a message — bit-identity with serial is
by construction, and the batches are exactly what a multi-process
deployment would put on the wire at each window boundary.  The router is
attached only while the engine drives windows and detached before any
checkpoint can be taken, so it is never pickled into a snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .partition import Partition
from .window import is_conservative, window_index

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.message import Message

__all__ = ["ShardRouter", "ConservativeWindowViolation"]


class ConservativeWindowViolation(RuntimeError):
    """A cross-shard message arrived within its own send window."""


class ShardRouter:
    """Observes transport sends, batches cross-shard traffic per window."""

    def __init__(self, partition: Partition, delta: float,
                 strict: bool = True) -> None:
        self.partition = partition
        self.delta = delta
        self.strict = strict
        self._owners = partition.owners()
        # open per-window batches: window -> list of
        # (send_t, arrival_t, src_shard, dst_shard, size, tasks)
        self._open: dict[int, list[tuple]] = {}
        self._flushed_through = -1
        # aggregate stats
        self.cross_messages = 0
        self.cross_bytes = 0
        self.cross_tasks = 0
        self.intra_messages = 0
        self.max_window_batch = 0
        self.violations = 0
        self.shard_messages_out = [0] * partition.shards

    # ------------------------------------------------------------------
    # network-side hook
    # ------------------------------------------------------------------
    def observe(self, msg: "Message", send_t: float, arrival_t: float,
                tasks_carried: int = 0) -> None:
        """Record one transmission (called from ``Network.transmit``)."""
        owners = self._owners
        s = owners[msg.src]
        d = owners[msg.dest]
        if s == d:
            self.intra_messages += 1
            return
        if not is_conservative(send_t, arrival_t, self.delta):
            self.violations += 1
            if self.strict:
                raise ConservativeWindowViolation(
                    f"cross-shard message {msg.kind!r} {msg.src}->{msg.dest} "
                    f"sent at {send_t!r} arrives at {arrival_t!r}, inside "
                    f"its own window (delta={self.delta!r}); the window "
                    "under-estimates the minimum cross-shard latency"
                )
        k = window_index(send_t, self.delta)
        self._open.setdefault(k, []).append(
            (send_t, arrival_t, s, d, msg.size, tasks_carried)
        )
        self.shard_messages_out[s] += 1

    # ------------------------------------------------------------------
    # engine-side: window boundaries
    # ------------------------------------------------------------------
    def flush_through(self, k: int) -> int:
        """Close every window up to and including ``k``; returns the
        number of cross-shard messages those windows carried.

        In a multi-process deployment this is the point where each
        shard's outbound batches would be posted to peer channels; here
        the batches fold into the aggregate traffic statistics.
        """
        flushed = 0
        for w in sorted(w for w in self._open if w <= k):
            batch = self._open.pop(w)
            flushed += len(batch)
            self.max_window_batch = max(self.max_window_batch, len(batch))
            for _send_t, _arr_t, _s, _d, size, tasks in batch:
                self.cross_messages += 1
                self.cross_bytes += size
                self.cross_tasks += tasks
        if k > self._flushed_through:
            self._flushed_through = k
        return flushed

    def flush_all(self) -> int:
        """Close any still-open windows (end of run)."""
        if not self._open:
            return 0
        return self.flush_through(max(self._open))

    def summary(self) -> dict:
        """JSON-able aggregate for ``metrics.extra['shard']``."""
        return {
            "cross_messages": self.cross_messages,
            "cross_bytes": self.cross_bytes,
            "cross_tasks": self.cross_tasks,
            "intra_messages": self.intra_messages,
            "max_window_batch": self.max_window_batch,
            "violations": self.violations,
            "messages_out": list(self.shard_messages_out),
        }
