"""Shard worker: one block of the mesh plus its local event engines.

A :class:`ShardWorker` owns a :class:`~repro.machine.event.Simulator`
for heterogeneous, order-sensitive local events and an
:class:`~repro.machine.event.EventLanes` batch kernel for homogeneous
storms.  Both drain against the same conservative window boundaries;
cross-shard emissions accumulate in per-destination outboxes that the
engine exchanges at each barrier.

A :class:`ShardProgram` defines what actually runs on the workers.
Programs must be defined at module level (picklable) so the same program
object drives both the inline and the one-process-per-shard engine mode;
the engine asserts the two modes produce identical results in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.machine.event import EventLanes, Simulator

from .partition import Partition
from .window import window_end

__all__ = ["ShardWorker", "ShardProgram"]


class ShardWorker:
    """Execution context of one shard."""

    def __init__(self, shard: int, partition: Partition, delta: float) -> None:
        self.shard = shard
        self.partition = partition
        self.delta = delta
        self.sim = Simulator()
        self.lanes = EventLanes()
        self.executed = 0
        self.windows = 0
        #: per-destination outgoing batches for the current window;
        #: each entry is a float64 array of *arrival* times at the peer
        self._outbox: dict[int, list[np.ndarray]] = {}
        #: program scratch state
        self.state: dict = {}
        #: optional per-worker tracer (merged across shards by obs.export)
        self.tracer = None

    @property
    def ranks(self) -> range:
        """The mesh ranks this shard owns."""
        return self.partition.ranks(self.shard)

    def emit(self, dst_shard: int, arrival_times) -> None:
        """Queue a cross-shard batch; ``arrival_times`` are absolute
        times at the destination and must respect the conservative
        window (``>= send + delta``), which the engine validates."""
        arr = np.asarray(arrival_times, dtype=np.float64)
        if arr.size == 0:
            return
        if dst_shard == self.shard:
            raise ValueError("emit() is for cross-shard traffic only")
        self._outbox.setdefault(dst_shard, []).append(arr)

    def run_window(self, k: int) -> dict[int, list[np.ndarray]]:
        """Drain window ``k`` locally; return and reset the outbox."""
        end = window_end(k, self.delta)
        n = self.lanes.drain_window(end)
        if self.sim._peek_live() is not None:
            n += self.sim.drain_window(end)
        self.executed += n
        self.windows += 1
        out, self._outbox = self._outbox, {}
        return out

    def next_time(self) -> float:
        """Earliest locally pending due time (``inf`` when idle)."""
        t = self.lanes.next_time()
        ev = self.sim._peek_live()
        if ev is not None and ev.key[0] < t:
            t = ev.key[0]
        return t


class ShardProgram:
    """Base class for picklable per-shard programs.

    Lifecycle per worker: ``setup`` once, then for every window any
    received peer batches are handed to ``receive`` *before* the window
    drains, and ``finish`` produces the worker's result dict after the
    global stop condition fires.
    """

    def setup(self, worker: ShardWorker) -> None:  # pragma: no cover
        raise NotImplementedError

    def receive(self, worker: ShardWorker, src_shard: int,
                arrival_times: np.ndarray) -> None:
        """Default: ignore peer traffic."""

    def finish(self, worker: ShardWorker) -> Optional[dict]:
        """Default result: the worker's counters."""
        return {"shard": worker.shard, "executed": worker.executed,
                "windows": worker.windows}
