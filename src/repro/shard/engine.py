"""The sharded execution engines.

Two entry points:

* :func:`drive_sharded` — drive one existing
  :class:`~repro.machine.machine.Machine` (a full strategy run: driver,
  workers, faults, tracer, everything) window by window.  The machine's
  event queue is drained with
  :meth:`~repro.machine.event.Simulator.drain_window`, which executes
  the byte-identical event sequence of a plain ``run()``; a
  :class:`~repro.shard.router.ShardRouter` on the network hook batches
  cross-shard traffic per window and checks the conservative invariant.
  This is what ``Session(shards=N)`` uses — results are bit-identical to
  serial for every strategy and fault plan because windows only insert
  observation points into the one global event order.

* :func:`run_program` — run a :class:`~repro.shard.worker.ShardProgram`
  across shard workers, each with its own simulator and
  :class:`~repro.machine.event.EventLanes` batch kernel, exchanging
  batched traffic at window barriers.  ``mode="inline"`` runs all
  workers in one process (the benchmark configuration: on one visible
  core all the speedup comes from batch dispatch, none from processes);
  ``mode="process"`` forks one OS process per shard with queue-backed
  channels and lockstep null-message barriers, for multi-core hosts.
  Both modes make stop/skip decisions from globally-exchanged data only,
  so they produce identical results (asserted in tests).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

import numpy as np

from .channel import LoopbackChannels, ProcessChannels
from .partition import (
    Partition,
    ShardConfigError,
    conservative_window,
    make_partition,
)
from .router import ConservativeWindowViolation, ShardRouter
from .window import window_end, window_index
from .worker import ShardProgram, ShardWorker

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine

__all__ = ["drive_sharded", "run_program"]


def _inner_network(network):
    """Unwrap fault-injection decorators down to the transport that owns
    the ``shard_router`` hook."""
    while not hasattr(network, "shard_router"):
        inner = getattr(network, "inner", None)
        if inner is None:
            raise ShardConfigError(
                f"network {type(network).__name__} has no shard_router hook"
            )
        network = inner
    return network


# ----------------------------------------------------------------------
# strategy runs: window-step one Machine
# ----------------------------------------------------------------------
def drive_sharded(machine: "Machine", shards: int, strict: bool = True) -> dict:
    """Run ``machine`` to completion in conservative windows.

    Returns the JSON-able shard summary that
    :meth:`repro.session.Session.run` stores under
    ``metrics.extra["shard"]``.  The router is attached only for the
    duration of this call (never pickled into snapshots) and the drain
    order equals serial order, so everything observable — metrics,
    tracer records, audits — matches an unsharded run exactly.
    """
    partition = make_partition(machine.num_nodes, shards)
    delta = conservative_window(machine.topology, machine.latency, partition)
    net = _inner_network(machine.network)
    if net.shard_router is not None:
        raise ShardConfigError("machine is already being driven sharded")
    router = ShardRouter(partition, delta, strict=strict)
    owners = partition.owners()
    for node in machine.nodes:
        node.shard = owners[node.rank]
    sim = machine.sim
    windows = 0
    net.shard_router = router
    try:
        while True:
            ev = sim._peek_live()
            if ev is None:
                break
            # jump straight to the window containing the next event —
            # empty windows carry no traffic and need no barrier
            k = window_index(ev.key[0], delta)
            end = window_end(k, delta)
            if end < ev.key[0]:
                # the head sits an ulp past the boundary and the index's
                # rounding grace pulled it into window k; drain the next
                # window instead so every iteration makes progress
                k += 1
                end = window_end(k, delta)
            sim.drain_window(end)
            router.flush_through(k)
            windows += 1
    finally:
        net.shard_router = None
    router.flush_all()
    per_shard_cpu = []
    per_shard_ranks = []
    for s in range(partition.shards):
        ranks = partition.ranks(s)
        per_shard_ranks.append(len(ranks))
        per_shard_cpu.append(
            sum(sum(machine.nodes[r].cpu_time.values()) for r in ranks)
        )
    info = {
        "shards": shards,
        "window_seconds": delta,
        "windows": windows,
        "partition": [list(b) for b in partition.blocks],
        "per_shard": {"ranks": per_shard_ranks, "cpu_seconds": per_shard_cpu},
    }
    info.update(router.summary())
    return info


# ----------------------------------------------------------------------
# shard programs: per-worker simulators + lanes, barrier exchange
# ----------------------------------------------------------------------
def _check_outbound(out: dict, k: int, delta: float) -> float:
    """Validate window-``k`` emissions; returns their earliest arrival.

    Mirrors :func:`repro.shard.window.is_conservative`, ulp-grace
    included — and inherits its ordering caveat: an arrival that rounds
    onto a window boundary is delivered into the *next* window and so
    runs after equal-timestamp events local to the destination.  Fine
    for order-free lanes; see ``is_conservative`` for the nudge an
    order-exact Simulator program must apply.
    """
    earliest = math.inf
    for dst, arrays in out.items():
        for arr in arrays:
            lo = float(arr.min())
            if lo + delta * 1e-9 <= window_end(k, delta):
                raise ConservativeWindowViolation(
                    f"batch for shard {dst} emitted in window {k} has an "
                    f"arrival at {lo!r}, not strictly after the window "
                    f"boundary {window_end(k, delta)!r}"
                )
            if lo < earliest:
                earliest = lo
    return earliest


def _deliver(program: ShardProgram, worker: ShardWorker,
             inbox: dict[int, list[np.ndarray]]) -> None:
    for src in sorted(inbox):
        for arr in inbox[src]:
            program.receive(worker, src, arr)


def run_program(
    program: ShardProgram,
    *,
    num_nodes: int,
    shards: int,
    delta: float,
    budget_events: Optional[int] = None,
    max_windows: Optional[int] = None,
    mode: str = "inline",
) -> list[dict]:
    """Run ``program`` on ``shards`` workers; returns per-shard results.

    The loop is identical in both modes: deliver peer batches, drain the
    window, exchange ``(executed, next_due, min_outbound_arrival,
    batches)`` at the barrier, then jointly decide to stop (budget
    reached, window cap, or globally idle) or jump to the next non-empty
    window.  Every decision uses only globally-exchanged values, so any
    worker reaches the same conclusion — and the inline and process
    engines produce identical results.
    """
    if shards < 1:
        raise ShardConfigError(f"shards must be >= 1, got {shards}")
    if delta <= 0:
        raise ShardConfigError("delta must be positive")
    partition = make_partition(num_nodes, shards)
    if mode == "inline":
        return _run_inline(program, partition, delta, budget_events, max_windows)
    if mode == "process":
        return _run_process(program, partition, delta, budget_events, max_windows)
    raise ShardConfigError(f"unknown engine mode {mode!r}")


def _run_inline(program, partition, delta, budget_events, max_windows):
    shards = partition.shards
    workers = [ShardWorker(s, partition, delta) for s in range(shards)]
    for w in workers:
        program.setup(w)
    channels = LoopbackChannels(shards)
    pending = [{} for _ in range(shards)]  # dst -> {src: [arrays]}
    k = 0
    done_windows = 0
    while True:
        for w in workers:
            inbox, pending[w.shard] = pending[w.shard], {}
            _deliver(program, w, inbox)
        nxt = min(w.next_time() for w in workers)
        if nxt == math.inf:
            break
        k = max(k, window_index(nxt, delta))
        outs = [w.run_window(k) for w in workers]
        done_windows += 1
        for w, out in zip(workers, outs):
            _check_outbound(out, k, delta)
            for dst, arrays in out.items():
                channels.post(w.shard, dst, k, arrays)
                pending[dst].setdefault(w.shard, []).extend(arrays)
            # null messages keep the channel protocol honest even inline
            for dst in range(shards):
                if dst != w.shard and dst not in out:
                    channels.post(w.shard, dst, k, [])
        for w in workers:
            channels.collect(w.shard, k)
        total = sum(w.executed for w in workers)
        if budget_events is not None and total >= budget_events:
            break
        if max_windows is not None and done_windows >= max_windows:
            break
        k += 1
    return [program.finish(w) for w in workers]


def _worker_main(program, shard, partition, delta, budget_events,
                 max_windows, queues, result_q):
    try:
        worker = ShardWorker(shard, partition, delta)
        program.setup(worker)
        channels = ProcessChannels(shard, queues)
        pending: dict[int, list[np.ndarray]] = {}
        k = 0
        done_windows = 0
        while True:
            inbox, pending = pending, {}
            _deliver(program, worker, inbox)
            local_next = worker.next_time()
            # barrier A: agree on the next non-empty window (or idle stop).
            # Barrier keys must be *monotonically increasing* across the
            # whole run (2k for A, 2k+1 for B): a fast peer can post its
            # barrier-B payload while this worker is still collecting
            # barrier A, and ProcessChannels tells "from the future, stash"
            # apart from "stale, protocol bug" purely by key order.
            channels.post_all(2 * k, {d: ("next", local_next)
                                      for d in range(partition.shards)})
            peer_next = [p[1] for p in channels.collect(2 * k).values()]
            nxt = min([local_next, *peer_next])
            if nxt == math.inf:
                break
            k = max(k, window_index(nxt, delta))
            out = worker.run_window(k)
            done_windows += 1
            _check_outbound(out, k, delta)
            # barrier B: exchange batches + executed counts (nulls incl.)
            payloads = {d: ("batch", worker.executed, out.get(d, []))
                        for d in range(partition.shards)}
            channels.post_all(2 * k + 1, payloads)
            got = channels.collect(2 * k + 1)
            total = worker.executed
            for src in sorted(got):
                _tag, peer_exec, arrays = got[src]
                total += peer_exec
                if arrays:
                    pending.setdefault(src, []).extend(arrays)
            if budget_events is not None and total >= budget_events:
                break
            if max_windows is not None and done_windows >= max_windows:
                break
            k += 1
        result_q.put((shard, program.finish(worker)))
    except BaseException as exc:  # pragma: no cover - surfaced in parent
        result_q.put((shard, {"error": repr(exc)}))
        raise


def _run_process(program, partition, delta, budget_events, max_windows):
    import multiprocessing as mp

    ctx = mp.get_context()
    shards = partition.shards
    queues = [ctx.SimpleQueue() for _ in range(shards)]
    result_q = ctx.SimpleQueue()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(program, s, partition, delta, budget_events, max_windows,
                  queues, result_q),
            daemon=True,
        )
        for s in range(shards)
    ]
    for p in procs:
        p.start()
    results: list[Optional[dict]] = [None] * shards
    failure = None
    try:
        for _ in range(shards):
            shard, res = result_q.get()
            results[shard] = res
            if isinstance(res, dict) and "error" in res:
                # peers may be blocked at a barrier waiting for the dead
                # worker; stop collecting and tear everything down
                failure = (shard, res["error"])
                break
    finally:
        for p in procs:
            if failure is not None and p.is_alive():
                p.terminate()
            p.join(timeout=30)
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
                p.join(timeout=5)
    if failure is not None:
        raise RuntimeError(f"shard worker {failure[0]} failed: {failure[1]}")
    return results
