"""Batched inter-shard channels.

One logical channel set connects every shard to every other.  Traffic is
exchanged only at window boundaries, always as whole batches, and every
shard posts to every peer each window — an *empty* batch is the classic
conservative-PDES null message, which is what lets a receiver prove no
earlier traffic can still arrive and advance its own clock.

Two implementations share the protocol:

* :class:`LoopbackChannels` — all shards in one process (plain dict
  buffers).  This is the default engine mode and is what the benchmark
  numbers use; on a single visible core it is also the *fastest* mode,
  since the win comes from batching, not from process parallelism.
* :class:`ProcessChannels` — one ``multiprocessing.SimpleQueue`` inbox
  per shard.  Lockstep barriers mean a worker can be at most one
  *barrier* ahead of any peer, so out-of-order messages need only a
  one-barrier reorder buffer — provided barrier keys increase
  monotonically over the run (the engine uses ``2k``/``2k+1`` for the
  two barriers of window ``k``), so "ahead" is decidable by key order.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["LoopbackChannels", "ProcessChannels"]


class LoopbackChannels:
    """In-process channel set: per-destination buffered batches."""

    def __init__(self, shards: int) -> None:
        self.shards = shards
        # dst -> window -> {src: batch}
        self._bufs: list[dict[int, dict[int, list]]] = [
            {} for _ in range(shards)
        ]

    def post(self, src: int, dst: int, window: int, batch: list) -> None:
        """Post ``src``'s window-``window`` batch for ``dst`` (may be [])."""
        self._bufs[dst].setdefault(window, {})[src] = batch

    def collect(self, dst: int, window: int) -> dict[int, list]:
        """All peers' batches for ``window`` at ``dst``, keyed by source.

        Raises if any peer has not posted — with the inline lockstep
        engine every peer posts (possibly empty) before anyone collects,
        so a miss is an engine bug, not a timing race.
        """
        got = self._bufs[dst].pop(window, {})
        expect = self.shards - 1
        if len(got) != expect:
            missing = [s for s in range(self.shards)
                       if s != dst and s not in got]
            raise RuntimeError(
                f"shard {dst} window {window}: missing batches from "
                f"{missing} (null messages must be posted every window)"
            )
        return got


class ProcessChannels:
    """Queue-backed channel set for one worker process.

    Each worker owns inbox ``queues[shard]`` and holds references to all
    peers' inboxes.  Messages are ``(barrier, src, payload)`` tuples;
    ``payload`` carries the batch plus piggybacked worker state (e.g.
    executed-event counts used for the global stop decision).

    Barrier keys must be strictly increasing over the run (every worker
    walks the identical key sequence — the engine derives it from
    globally exchanged data only).  Lockstep then bounds the skew: while
    this worker collects barrier ``b``, a peer can have posted at most
    through the *next* barrier, so anything with a higher key is
    stashed for its own collect and anything with a lower key is a
    protocol violation, not a race.
    """

    def __init__(self, shard: int, queues: list) -> None:
        self.shard = shard
        self.shards = len(queues)
        self._queues = queues
        self._inbox = queues[shard]
        # window -> {src: payload} for messages that arrived early
        self._stash: dict[int, dict[int, object]] = {}

    def post_all(self, barrier: int, payloads: dict[int, object]) -> None:
        """Send one payload to every peer (null messages included)."""
        for dst in range(self.shards):
            if dst == self.shard:
                continue
            self._queues[dst].put((barrier, self.shard, payloads.get(dst)))

    def collect(self, barrier: int, timeout: Optional[float] = None
                ) -> dict[int, object]:
        """Block until every peer's ``barrier`` payload arrived."""
        got = self._stash.pop(barrier, {})
        expect = self.shards - 1
        while len(got) < expect:
            b, src, payload = self._inbox.get()
            if b == barrier:
                got[src] = payload
            elif b > barrier:
                # a fast peer already posted a later barrier: hold it
                self._stash.setdefault(b, {})[src] = payload
            else:
                # keys increase monotonically and per-sender FIFO order is
                # preserved, so an earlier key here means the barrier
                # protocol itself is broken — never drop it silently (a
                # dropped payload deadlocks the peer's collect forever)
                raise RuntimeError(
                    f"shard {self.shard} collecting barrier {barrier}: "
                    f"stale barrier-{b} message from shard {src} "
                    "(barrier keys must be monotonically increasing)"
                )
        return got
