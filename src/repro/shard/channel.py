"""Batched inter-shard channels.

One logical channel set connects every shard to every other.  Traffic is
exchanged only at window boundaries, always as whole batches, and every
shard posts to every peer each window — an *empty* batch is the classic
conservative-PDES null message, which is what lets a receiver prove no
earlier traffic can still arrive and advance its own clock.

Two implementations share the protocol:

* :class:`LoopbackChannels` — all shards in one process (plain dict
  buffers).  This is the default engine mode and is what the benchmark
  numbers use; on a single visible core it is also the *fastest* mode,
  since the win comes from batching, not from process parallelism.
* :class:`ProcessChannels` — one ``multiprocessing.SimpleQueue`` inbox
  per shard.  Lockstep window barriers mean a worker can be at most one
  window ahead of any peer, so out-of-order messages need only a one-
  window reorder buffer.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["LoopbackChannels", "ProcessChannels"]


class LoopbackChannels:
    """In-process channel set: per-destination buffered batches."""

    def __init__(self, shards: int) -> None:
        self.shards = shards
        # dst -> window -> {src: batch}
        self._bufs: list[dict[int, dict[int, list]]] = [
            {} for _ in range(shards)
        ]

    def post(self, src: int, dst: int, window: int, batch: list) -> None:
        """Post ``src``'s window-``window`` batch for ``dst`` (may be [])."""
        self._bufs[dst].setdefault(window, {})[src] = batch

    def collect(self, dst: int, window: int) -> dict[int, list]:
        """All peers' batches for ``window`` at ``dst``, keyed by source.

        Raises if any peer has not posted — with the inline lockstep
        engine every peer posts (possibly empty) before anyone collects,
        so a miss is an engine bug, not a timing race.
        """
        got = self._bufs[dst].pop(window, {})
        expect = self.shards - 1
        if len(got) != expect:
            missing = [s for s in range(self.shards)
                       if s != dst and s not in got]
            raise RuntimeError(
                f"shard {dst} window {window}: missing batches from "
                f"{missing} (null messages must be posted every window)"
            )
        return got


class ProcessChannels:
    """Queue-backed channel set for one worker process.

    Each worker owns inbox ``queues[shard]`` and holds references to all
    peers' inboxes.  Messages are ``(window, src, payload)`` tuples;
    ``payload`` carries the batch plus piggybacked worker state (e.g.
    executed-event counts used for the global stop decision).
    """

    def __init__(self, shard: int, queues: list) -> None:
        self.shard = shard
        self.shards = len(queues)
        self._queues = queues
        self._inbox = queues[shard]
        # window -> {src: payload} for messages that arrived early
        self._stash: dict[int, dict[int, object]] = {}

    def post_all(self, window: int, payloads: dict[int, object]) -> None:
        """Send one payload to every peer (null messages included)."""
        for dst in range(self.shards):
            if dst == self.shard:
                continue
            self._queues[dst].put((window, self.shard, payloads.get(dst)))

    def collect(self, window: int, timeout: Optional[float] = None
                ) -> dict[int, object]:
        """Block until every peer's window-``window`` payload arrived."""
        got = self._stash.pop(window, {})
        expect = self.shards - 1
        while len(got) < expect:
            w, src, payload = self._inbox.get()
            if w == window:
                got[src] = payload
            elif w > window:
                self._stash.setdefault(w, {})[src] = payload
            # w < window: stale duplicate from a peer restart; impossible
            # under lockstep barriers, dropped defensively
        return got
