"""Mesh partitioning for sharded execution.

A *shard* is a contiguous block of ranks.  Ranks are row-major on the
mesh (``rank = i * n2 + j``), so contiguous rank blocks are horizontal
row bands — the same decomposition a PE-grid code would use, and the one
that minimizes the cross-shard cut for the paper's ``n1 >= n2`` mesh
shapes.  The partitioner is topology-agnostic: any
:class:`~repro.machine.topology.Topology` can be sharded, the blocks are
just contiguous rank ranges.

The quantity everything else depends on is the **conservative window**:

    delta = latency.per_hop * min_cross_shard_distance

No cross-shard message can be in flight for less time than one hop's
wire latency times the minimum hop distance between shards, so a message
*sent* during window ``k`` (the half-open interval
``(k * delta, (k+1) * delta]``) always *arrives* in window ``k+1`` or
later.  Draining whole windows locally and exchanging batched traffic at
window boundaries therefore never delivers a message early — the
classical conservative-PDES lookahead argument (see DESIGN.md).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.machine.network import LatencyModel
from repro.machine.topology import Topology, min_cross_block_distance

__all__ = [
    "ShardConfigError",
    "Partition",
    "contiguous_blocks",
    "make_partition",
    "conservative_window",
]


class ShardConfigError(ValueError):
    """Invalid shard configuration (too many shards, zero lookahead, ...)."""


def contiguous_blocks(num_nodes: int, shards: int) -> tuple[tuple[int, int], ...]:
    """Split ``0..num_nodes`` into ``shards`` contiguous half-open ranges.

    Sizes differ by at most one; larger blocks come first (deterministic).
    """
    if shards < 1:
        raise ShardConfigError(f"shards must be >= 1, got {shards}")
    if shards > num_nodes:
        raise ShardConfigError(
            f"cannot split {num_nodes} node(s) into {shards} shards"
        )
    base, extra = divmod(num_nodes, shards)
    blocks = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        blocks.append((lo, hi))
        lo = hi
    return tuple(blocks)


@dataclass(frozen=True)
class Partition:
    """An immutable shard layout: contiguous rank blocks covering the mesh."""

    num_nodes: int
    blocks: tuple[tuple[int, int], ...]

    @property
    def shards(self) -> int:
        return len(self.blocks)

    def block(self, shard: int) -> tuple[int, int]:
        return self.blocks[shard]

    def ranks(self, shard: int) -> range:
        lo, hi = self.blocks[shard]
        return range(lo, hi)

    def shard_of(self, rank: int) -> int:
        """Owning shard of ``rank`` (O(log shards))."""
        if not 0 <= rank < self.num_nodes:
            raise ValueError(f"rank {rank} out of range [0, {self.num_nodes})")
        starts = [lo for lo, _ in self.blocks]
        return bisect_right(starts, rank) - 1

    def owners(self) -> list[int]:
        """Dense rank -> shard lookup table."""
        out = [0] * self.num_nodes
        for s, (lo, hi) in enumerate(self.blocks):
            for r in range(lo, hi):
                out[r] = s
        return out


def make_partition(num_nodes: int, shards: int) -> Partition:
    """Standard partition: near-equal contiguous rank blocks."""
    return Partition(num_nodes, contiguous_blocks(num_nodes, shards))


def conservative_window(topology: Topology, latency: LatencyModel,
                        partition: Partition) -> float:
    """The safe window width ``delta`` for this layout (seconds).

    ``delta = per_hop * dmin`` where ``dmin`` is the minimum hop count
    between ranks of different shards.  Valid for both transports: the
    ideal network delivers at ``per_hop * hops + per_byte * size`` and
    the contention network's first-hop occupancy alone is
    ``per_hop + per_byte * size``; fault injection only ever *adds*
    delay.  All of these are ``>= per_hop * dmin`` for cross-shard
    traffic, so every cross-shard in-flight time is at least ``delta``.
    """
    if partition.shards < 2:
        raise ShardConfigError("conservative window needs >= 2 shards")
    dmin = min_cross_block_distance(topology, partition.blocks)
    delta = latency.per_hop * dmin
    if delta <= 0.0:
        raise ShardConfigError(
            "latency model has zero per-hop cost: cross-shard messages "
            "could arrive instantly, so no conservative window exists "
            "(sharded execution needs per_hop > 0)"
        )
    return delta
