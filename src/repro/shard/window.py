"""Conservative time-window arithmetic.

Windows are half-open-from-below, closed-from-above intervals of width
``delta``: window ``k`` is ``(k*delta, (k+1)*delta]``, except window 0
which also contains ``t = 0``.  The upper-inclusive convention matches
:meth:`repro.machine.event.Simulator.drain_window`, whose ``end`` is
inclusive — draining to ``window_end(k)`` executes exactly the events of
windows ``0..k``.

The invariant the shard engine relies on: a message *sent* at any time
inside window ``k`` with in-flight time ``>= delta`` *arrives* strictly
after ``window_end(k)``, i.e. in window ``k+1`` or later.  Proof sketch:
``send > k*delta`` (half-open below) and ``arrival >= send + delta >
(k+1)*delta = window_end(k)``.
"""

from __future__ import annotations

import math

__all__ = ["window_index", "window_end", "is_conservative"]

#: relative tolerance for boundary classification — float round-off in
#: ``t / delta`` must not misfile an event sitting exactly on a boundary
_REL_EPS = 1e-9


def window_index(t: float, delta: float) -> int:
    """Index of the window containing time ``t`` (``t <= 0`` -> 0)."""
    if t <= 0.0:
        return 0
    k = math.ceil(t / delta - _REL_EPS) - 1
    return k if k > 0 else 0


def window_end(k: int, delta: float) -> float:
    """Inclusive upper boundary of window ``k``."""
    return (k + 1) * delta


def is_conservative(send_t: float, arrival_t: float, delta: float) -> bool:
    """True iff an arrival lands strictly after its send window closes.

    This is the per-message check the router applies to every observed
    cross-shard transmission; a violation means the configured ``delta``
    under-estimates the actual minimum in-flight time and windowed
    execution could deliver early.  The comparison carries a relative
    ulp-grace: ``arrival = send + delta`` can round down onto the
    boundary itself, and boundary arrivals are delivered by the next
    window's drain, which is still safe.

    Ordering caveat of the grace: the destination has already drained
    window ``k`` (its drain is upper-inclusive) when a boundary-rounded
    arrival is handed over, so that message executes during window
    ``k+1`` — *after* any destination-local events carrying the same
    timestamp, i.e. out of global ``(time, priority, seq)`` order at
    that one instant.  This cannot happen in :func:`drive_sharded`
    (one simulator, serial order by construction); for worker programs
    it is harmless when within-window semantics are order-free (the
    :class:`~repro.machine.event.EventLanes` contract).  A
    Simulator-based :class:`~repro.shard.worker.ShardProgram` that
    needs exact cross-shard tie-breaking must keep equal-timestamp
    collisions off the boundary itself, e.g. by nudging such arrivals
    to ``math.nextafter(end, math.inf)`` on delivery.
    """
    k = window_index(send_t, delta)
    return arrival_t + delta * _REL_EPS > window_end(k, delta)
