"""Shard programs used by the sharded benchmark (and its tests).

These mirror the two single-process benchmark shapes of
:mod:`repro.runner.bench`:

* :class:`LoadedStorm` — the "loaded" shape: a wide population of
  independent tick chains with data-dependent reschedule delays.  This
  is the shape the vectorized :class:`~repro.machine.event.EventLanes`
  kernel exists for: every window, each shard advances its whole chain
  population with a handful of numpy calls instead of one Python
  dispatch per event.  Every ``cross_every``-th tick of a chain emits a
  cross-shard arrival to the next shard (round-robin), so the window
  barrier and channel batching are genuinely exercised.
* :class:`ChainStorm` — the "chain" shape: one strictly serial
  self-rescheduling chain per shard, run on the per-event simulator
  path.  Batch width is 1, so this measures the windowed drain's
  per-event floor plus barrier overhead — the honest worst case.

Programs carry only plain attributes (picklable); per-worker state is
built in ``setup`` inside the worker.
"""

from __future__ import annotations

import numpy as np

from .partition import contiguous_blocks
from .worker import ShardProgram, ShardWorker

__all__ = ["LoadedStorm", "ChainStorm"]


class LoadedStorm(ShardProgram):
    """``fanout`` tick chains spread over the shards, lane-vectorized."""

    def __init__(self, fanout: int = 1000, cross_every: int = 16) -> None:
        self.fanout = fanout
        self.cross_every = cross_every

    def setup(self, worker: ShardWorker) -> None:
        shards = worker.partition.shards
        lo, hi = contiguous_blocks(self.fanout, shards)[worker.shard]
        n = hi - lo
        # strictly positive staggered starts (t=0 sits on a window seam)
        times0 = 1e-6 * ((np.arange(lo, hi, dtype=np.float64) % 97) + 1)
        step = np.zeros(n, dtype=np.int64)
        dst = (worker.shard + 1) % shards
        cross_every = self.cross_every
        delta = worker.delta
        emit = worker.emit

        def tick(times: np.ndarray, idx: np.ndarray) -> None:
            step[idx] += 1
            # same data-dependent delay as the serial loaded benchmark
            times[idx] += 1e-6 * ((step[idx] % 7) + 1)
            if cross_every and shards > 1:
                sel = step[idx] % cross_every == 0
                if sel.any():
                    # one minimum-distance hop: in flight exactly delta,
                    # landing strictly inside the next window
                    emit(dst, times[idx][sel] + delta)

        worker.state["step"] = step
        worker.lanes.add_lane(times0, tick)

        def absorb(times: np.ndarray, idx: np.ndarray) -> None:
            times[idx] = np.inf  # arrival tally: deliver and retire

        worker.state["arrivals_lane"] = worker.lanes.add_lane(
            np.empty(0), absorb)

    def receive(self, worker: ShardWorker, src_shard: int,
                arrival_times: np.ndarray) -> None:
        worker.lanes.push(worker.state["arrivals_lane"], arrival_times)

    def finish(self, worker: ShardWorker) -> dict:
        out = super().finish(worker)
        out["ticks"] = int(worker.state["step"].sum())
        return out


class _Chain:
    """Self-rescheduling serial chain (bound-method events, per-event path)."""

    __slots__ = ("sim", "count")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.count = 0

    def __call__(self) -> None:
        self.count += 1
        self.sim.schedule(1e-6 * ((self.count % 7) + 1), self)


class ChainStorm(ShardProgram):
    """One strictly serial tick chain per shard; no batching possible."""

    def setup(self, worker: ShardWorker) -> None:
        chain = _Chain(worker.sim)
        worker.state["chain"] = chain
        worker.sim.schedule(1e-6, chain)

    def finish(self, worker: ShardWorker) -> dict:
        out = super().finish(worker)
        out["ticks"] = worker.state["chain"].count
        return out
