"""Sharded execution: mesh-partitioned workers with conservative windows.

One simulation is split into contiguous rank blocks (shards).  Local
work drains window by window; cross-shard traffic moves only at window
boundaries as whole batches.  The window width is the minimum
cross-shard link latency, so no message can arrive in the window it was
sent — the conservative-PDES lookahead argument that makes sharded
results bit-identical to serial (see DESIGN.md).

Strategy runs go through :func:`~repro.shard.engine.drive_sharded` (via
``Session(shards=N)``); custom shard-parallel programs — including the
sharded benchmark — go through :func:`~repro.shard.engine.run_program`
with per-shard :class:`~repro.machine.event.EventLanes` batch kernels.
"""

from .engine import drive_sharded, run_program
from .partition import (
    Partition,
    ShardConfigError,
    conservative_window,
    contiguous_blocks,
    make_partition,
)
from .router import ConservativeWindowViolation, ShardRouter
from .window import is_conservative, window_end, window_index
from .worker import ShardProgram, ShardWorker

__all__ = [
    "ConservativeWindowViolation",
    "Partition",
    "ShardConfigError",
    "ShardProgram",
    "ShardRouter",
    "ShardWorker",
    "conservative_window",
    "contiguous_blocks",
    "drive_sharded",
    "is_conservative",
    "make_partition",
    "run_program",
    "window_end",
    "window_index",
]
