"""Pluggable blob storage behind every on-disk cache.

Four subsystems persist content-addressed artifacts — finished cell
results (:mod:`repro.runner.result_cache`), warm-start prefix snapshots
(:class:`repro.snapshot.SnapshotCache`), preempted-cell run checkpoints
(:mod:`repro.runner.spec`), and the service's paused-session store
(:mod:`repro.service`).  They all want the same thing: atomic writes of
opaque bytes under a caller-computed key, corrupt-is-a-miss reads, and
cheap enumeration.  :class:`BlobStore` is that contract, and
:class:`LocalDirStore` the local-filesystem backend; other backends
(object stores, a shared network cache) implement the same five methods
and everything above them keeps working.

Namespaces
----------
Blobs live in *namespaces* — ``results``, ``snapshots``, ``checkpoints``,
``sessions`` — each mapping to a subdirectory + filename suffix of the
store root.  The mapping reproduces the historical ``.result_cache/``
layout exactly, so a store pointed at a pre-existing cache directory
sees every entry that was written before this abstraction existed.

Keys are plain strings (no path separators); the store neither hashes
nor interprets them — content addressing is the *caller's* discipline
(request hashes, snapshot digests, session ids).
"""

from __future__ import annotations

import os
import random
import time
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = [
    "BlobNamespace",
    "BlobStore",
    "FlakyStore",
    "LocalDirStore",
    "NAMESPACES",
    "StoreCorruption",
    "StoreFault",
    "default_store_root",
]


class StoreCorruption(UserWarning):
    """A blob on disk was unreadable/undecodable and has been quarantined."""


class StoreFault(OSError):
    """An injected store failure (raised by :class:`FlakyStore`)."""

_ENV_VAR = "REPRO_RESULT_CACHE"


@dataclass(frozen=True)
class BlobNamespace:
    """One logical shelf of the store: subdirectory + filename suffix."""

    name: str
    subdir: str  # "" = the store root itself
    suffix: str  # including the dot, e.g. ".pkl"
    description: str = ""


#: The store's shelves, matching the historical ``.result_cache/`` layout.
NAMESPACES: dict[str, BlobNamespace] = {
    ns.name: ns
    for ns in (
        BlobNamespace("results", "", ".pkl",
                      "finished experiment cells (RunMetrics pickles)"),
        BlobNamespace("snapshots", "snapshots", ".ckpt",
                      "warm-start prefix snapshots"),
        BlobNamespace("checkpoints", "checkpoints", ".ckpt",
                      "preempted/crash-durable run checkpoints"),
        BlobNamespace("sessions", "sessions", ".ckpt",
                      "paused service sessions"),
    )
}


def default_store_root() -> Path:
    """Default store root (``$REPRO_RESULT_CACHE`` or
    ``<repo>/.result_cache``), created on first use."""
    env = os.environ.get(_ENV_VAR)
    if env:
        path = Path(env)
    else:
        path = Path(__file__).resolve().parents[2] / ".result_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


class BlobStore(ABC):
    """Atomic, namespaced, key-addressed byte storage.

    Implementations must guarantee that :meth:`put` is atomic (a reader
    never observes a torn blob) and that :meth:`get` returns ``None`` —
    never raises — for absent keys.  Corruption detection is the
    *caller's* job (the stored formats are self-validating); callers
    delete bad blobs via :meth:`delete`.
    """

    @staticmethod
    def namespace(name: str) -> BlobNamespace:
        """Resolve a namespace name, with a clear error for typos."""
        try:
            return NAMESPACES[name]
        except KeyError:
            raise KeyError(
                f"unknown blob namespace {name!r}; "
                f"available: {', '.join(sorted(NAMESPACES))}"
            ) from None

    @abstractmethod
    def put(self, ns: str, key: str, data: bytes) -> None:
        """Atomically store ``data`` under ``(ns, key)``, replacing any
        previous blob."""

    @abstractmethod
    def get(self, ns: str, key: str) -> Optional[bytes]:
        """The blob at ``(ns, key)``, or ``None`` if absent/unreadable."""

    @abstractmethod
    def delete(self, ns: str, key: str) -> bool:
        """Remove one blob; True if something was removed."""

    @abstractmethod
    def keys(self, ns: str) -> list[str]:
        """All keys currently stored in ``ns`` (sorted)."""

    @abstractmethod
    def stats(self, ns: Optional[str] = None) -> dict:
        """Entry/byte totals — for one namespace, or ``{"namespaces":
        {...}, "entries": N, "bytes": B}`` over all of them."""

    def quarantine(self, ns: str, key: str) -> bool:
        """Put a blob that failed to decode out of the read path.

        Callers that detect corruption (a truncated snapshot, an
        undecodable journal) call this instead of :meth:`delete` so the
        evidence survives for forensics.  The base implementation just
        deletes; :class:`LocalDirStore` renames to ``<blob>.corrupt``.
        Emits a :class:`StoreCorruption` warning either way; returns
        True if a blob was actually moved/removed.
        """
        moved = self.delete(ns, key)
        if moved:
            warnings.warn(
                f"blob {ns}/{key} was unreadable and has been quarantined",
                StoreCorruption, stacklevel=2)
        return moved

    def clear(self, ns: Optional[str] = None) -> int:
        """Delete every blob in ``ns`` (or in all namespaces); returns
        the number removed."""
        names = [ns] if ns is not None else list(NAMESPACES)
        removed = 0
        for name in names:
            for key in self.keys(name):
                if self.delete(name, key):
                    removed += 1
        return removed


class LocalDirStore(BlobStore):
    """The local-filesystem backend: one file per blob.

    Writes go to a pid-unique temp file then ``rename`` within the same
    directory, so concurrent writers (pool workers, service threads) and
    interrupted processes can never leave a torn entry — the same
    discipline ``.result_cache/`` has always used, now in one place.
    """

    def __init__(self, root: Optional[Path | str] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path(self, ns: str, key: str) -> Path:
        spec = self.namespace(ns)
        if "/" in key or key.startswith("."):
            raise ValueError(f"invalid blob key {key!r}")
        base = self.root / spec.subdir if spec.subdir else self.root
        return base / f"{key}{spec.suffix}"

    # ------------------------------------------------------------------
    def put(self, ns: str, key: str, data: bytes) -> None:
        path = self.path(ns, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(f"{path}.{os.getpid()}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            # fsync before the rename: the atomic replace only protects
            # against torn *names* — a crash between rename and writeback
            # could still surface a zero-length blob without this.
            os.fsync(fh.fileno())
        tmp.replace(path)

    def get(self, ns: str, key: str) -> Optional[bytes]:
        path = self.path(ns, key)
        try:
            return path.read_bytes()
        except OSError:
            return None

    def delete(self, ns: str, key: str) -> bool:
        path = self.path(ns, key)
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def quarantine(self, ns: str, key: str) -> bool:
        """Rename an unreadable blob to ``<name>.corrupt`` (keeping the
        evidence on disk, out of :meth:`keys`/:meth:`get` sight) and warn."""
        path = self.path(ns, key)
        target = Path(f"{path}.corrupt")
        try:
            path.replace(target)
        except OSError:
            return False
        warnings.warn(
            f"blob {ns}/{key} was unreadable; quarantined to {target.name}",
            StoreCorruption, stacklevel=2)
        return True

    def keys(self, ns: str) -> list[str]:
        spec = self.namespace(ns)
        base = self.root / spec.subdir if spec.subdir else self.root
        if not base.is_dir():
            return []
        n = len(spec.suffix)
        return sorted(p.name[:-n] for p in base.glob(f"*{spec.suffix}"))

    def stats(self, ns: Optional[str] = None) -> dict:
        if ns is not None:
            spec = self.namespace(ns)
            base = self.root / spec.subdir if spec.subdir else self.root
            entries = list(base.glob(f"*{spec.suffix}")) if base.is_dir() else []
            return {
                "namespace": spec.name,
                "dir": str(base),
                "entries": len(entries),
                "bytes": sum(p.stat().st_size for p in entries),
            }
        per = {name: self.stats(name) for name in NAMESPACES}
        return {
            "dir": str(self.root),
            "namespaces": per,
            "entries": sum(s["entries"] for s in per.values()),
            "bytes": sum(s["bytes"] for s in per.values()),
        }

    def __repr__(self) -> str:
        return f"LocalDirStore({str(self.root)!r})"


class FlakyStore(BlobStore):
    """A deterministic fault-injecting wrapper around another store.

    The service chaos harness wraps the real store in one of these to
    prove the control plane survives storage trouble: seeded with
    ``seed``, it fails a fraction of writes (``put_fail_rate``, raising
    :class:`StoreFault`), turns a fraction of reads into misses
    (``get_miss_rate``, returning ``None`` — an unreadable blob and an
    absent one look the same to callers, per the :class:`BlobStore`
    contract), and optionally sleeps ``latency`` seconds per operation.
    The fault sequence is a pure function of the seed and the operation
    order, so a failing chaos case replays exactly.
    """

    def __init__(self, inner: BlobStore, seed: int = 0,
                 put_fail_rate: float = 0.0, get_miss_rate: float = 0.0,
                 latency: float = 0.0) -> None:
        self.inner = inner
        self.rng = random.Random(seed)
        self.put_fail_rate = float(put_fail_rate)
        self.get_miss_rate = float(get_miss_rate)
        self.latency = float(latency)
        self.injected_put_failures = 0
        self.injected_get_misses = 0

    def _dawdle(self) -> None:
        if self.latency > 0:
            time.sleep(self.latency)

    def put(self, ns: str, key: str, data: bytes) -> None:
        self._dawdle()
        if self.put_fail_rate and self.rng.random() < self.put_fail_rate:
            self.injected_put_failures += 1
            raise StoreFault(f"injected put failure for {ns}/{key}")
        self.inner.put(ns, key, data)

    def get(self, ns: str, key: str) -> Optional[bytes]:
        self._dawdle()
        if self.get_miss_rate and self.rng.random() < self.get_miss_rate:
            self.injected_get_misses += 1
            return None
        return self.inner.get(ns, key)

    def delete(self, ns: str, key: str) -> bool:
        return self.inner.delete(ns, key)

    def quarantine(self, ns: str, key: str) -> bool:
        return self.inner.quarantine(ns, key)

    def keys(self, ns: str) -> list[str]:
        return self.inner.keys(ns)

    def stats(self, ns: Optional[str] = None) -> dict:
        return self.inner.stats(ns)

    def __repr__(self) -> str:
        return (f"FlakyStore({self.inner!r}, put_fail_rate="
                f"{self.put_fail_rate}, get_miss_rate={self.get_miss_rate})")
