"""Runtime Incremental Parallel Scheduling — the paper's contribution.

Execution alternates between **user phases** (nodes execute tasks from
their RTE queues, newly generated tasks accumulate) and **system phases**
(all processors cooperatively rebalance).  This module implements the
full protocol of Section 2 on the simulated machine, with every policy
combination of the paper:

local policy (``EAGER`` / ``LAZY``)
    Eager keeps two queues: generated tasks enter the ready-to-schedule
    (RTS) queue and *must* pass a system phase before execution.  Lazy
    uses a single RTE queue; tasks may be generated and executed on the
    same node without ever being scheduled — only the leftovers of a
    phase transfer get scheduled.

global policy (``ALL`` / ``ANY``)
    ALL transfers to the system phase when *every* node has drained its
    RTE queue, detected by the ready-signal tree of Section 2 (a node
    signals its parent once it and all its children are ready; the root
    broadcasts *init*).  ANY transfers as soon as *one* node drains,
    that node broadcasting *init* itself (the or-barrier/eureka pattern);
    duplicate initiators are suppressed by the phase index.

System phase protocol (per phase ``p``):

1. *init(p)* reaches a node: it finishes its current task (no
   preemption), pauses execution, moves leftover RTE tasks (plus the
   whole RTS queue under eager) into its scheduling pool, and
   contributes its pool size to a load gather up the spanning tree.
2. The root runs the redistribution planner (MWA on a mesh) on the load
   vector and sends every node its *plan*: final quota, expected
   incoming count, and an outgoing transfer list.
3. Nodes send packed task messages straight to their destinations —
   preferring to forward tasks that are already non-local, which is what
   makes MWA's locality guarantee (Theorem 2) hold end-to-end — and
   resume the user phase once all expected tasks have arrived.
4. If the gathered total is zero the root broadcasts *sleep* (more
   waves pending) or *done* (workload finished) instead of plans.

The planner decisions are computed array-level (:mod:`repro.core.mwa`);
the message-level MWA protocol in :mod:`repro.core.mwa_protocol` is
validated against it.  The gather/plan/migrate message exchange above is
fully simulated, so detection cost, scheduling cost, and migration cost
all land in the measured overhead ``Th`` exactly like the paper's.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.balancers.base import RunMetrics, Strategy
from repro.machine import BinomialBroadcast, GatherTree, Message
from repro.machine.collectives import survivor_tree
from .schedulers import (
    Planner,
    RedistributionPlan,
    default_planner,
    greedy_subset_plan,
)

__all__ = ["LocalPolicy", "GlobalPolicy", "RIPS"]


class LocalPolicy(str, enum.Enum):
    """When must a task pass a system phase before executing?"""

    EAGER = "eager"
    LAZY = "lazy"


class GlobalPolicy(str, enum.Enum):
    """How many nodes must satisfy the local condition to switch phase?"""

    ALL = "all"
    ANY = "any"


def _merge_loads(a: dict, b: dict) -> dict:
    """GatherTree combiner for per-rank load counts.

    Module-level (not a lambda) so the gather tree — and with it the
    whole machine graph — stays picklable for checkpoint/restore.
    """
    return {**a, **b}


class _Mode(enum.Enum):
    USER = enum.auto()
    STOPPING = enum.auto()  # init seen, finishing the current task
    SYSTEM = enum.auto()  # contributed, waiting for plan / migrations
    DONE = enum.auto()


@dataclass
class _NodeState:
    mode: _Mode = _Mode.USER
    completed_phase: int = 0  # last system phase this node finished
    target_phase: int = 0  # phase currently being executed (mode SYSTEM)
    pending_init: int = 0  # init seen while still in a system phase
    rts: list[int] = field(default_factory=list)  # eager's RTS queue
    pool: list[int] = field(default_factory=list)  # tasks being scheduled
    pinned_hold: list[int] = field(default_factory=list)
    incoming_expected: int = 0
    incoming_got: int = 0
    plan_received: bool = False
    initiated_phase: int = 0  # ANY: last phase this node initiated
    ready_sent_phase: int = 0  # ALL: last phase we signalled up the tree
    # ALL: per-target-phase count of ready children subtrees (a child may
    # signal readiness for phase p+1 while we are still completing p)
    ready_counts: dict[int, int] = field(default_factory=dict)
    asleep: bool = False  # suppress triggers until new tasks appear


class RIPS(Strategy):
    """Runtime Incremental Parallel Scheduling."""

    def __init__(
        self,
        local_policy: LocalPolicy | str = LocalPolicy.LAZY,
        global_policy: GlobalPolicy | str = GlobalPolicy.ANY,
        planner: Optional[Planner] = None,
        plan_compute_per_node: float = 1e-6,
    ) -> None:
        super().__init__()
        self.local_policy = LocalPolicy(local_policy)
        self.global_policy = GlobalPolicy(global_policy)
        self._planner = planner
        self.plan_compute_per_node = plan_compute_per_node
        self.name = f"RIPS-{self.global_policy.value}-{self.local_policy.value}"
        # stats
        self.num_phases = 0
        self.migrated_tasks = 0
        self.plan_cost_total = 0
        self.abandoned_phases = 0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def attach(self, driver) -> None:
        super().attach(driver)
        machine = self.machine
        if self._planner is None:
            self._planner = default_planner(machine.topology)
        self.states = [_NodeState() for _ in range(machine.num_nodes)]
        self._bcast_init = BinomialBroadcast(machine, "rips.init", self._on_init)
        self._bcast_ctrl = BinomialBroadcast(machine, "rips.ctrl", self._on_ctrl)
        self._gather = GatherTree(
            machine,
            "rips.load",
            combine=_merge_loads,
            on_result=self._on_loads_gathered,
            root=0,
        )
        self._tree_parent, self._tree_children = machine.topology.spanning_tree(0)
        for node in machine.nodes:
            node.on("rips.ready", self._on_ready)
            node.on("rips.plan", self._on_plan)
        self._initial_phase_requested = False
        #: hardened mode: tolerate faults (stale protocol traffic is
        #: dropped instead of raising) and recover from fail-stop crashes.
        #: On a fault-free machine every new guard below is inert.
        self._hardened = machine.faults is not None
        #: current protocol root (re-elected as min(alive) after a crash).
        self._root = 0
        #: one root per reachability component while partitioned.
        self._roots = [0]
        #: highest system phase abandoned because of a crash; protocol
        #: traffic for phases <= this watermark is stale by definition.
        self._max_abandoned = 0
        #: widest post-plan quota spread seen (obs-rich runs only); the
        #: chaos checker asserts it stays <= 1.
        self.max_quota_spread = 0
        if self._hardened:
            machine.faults.on_membership_changed(self._on_membership_event)
            if machine.faults.membership is not None:
                # elastic plan: the collective trees must span only the
                # *initial* members — a standby rank neither contributes
                # to gathers nor receives inits until its join commits.
                # No kicks: the driver has not started yet.
                self._membership_changed(kick=False)

    # ------------------------------------------------------------------
    # placement hooks (driver side)
    # ------------------------------------------------------------------
    def place_root(self, node: int, task: int) -> None:
        """Wave-0 roots wait in the pool for the initial system phase
        (Figure 1: a RIPS run *starts* with a system phase)."""
        st = self.states[node]
        if self.driver.trace.task(task).pinned is not None:
            self.worker(node).enqueue(task)
        else:
            st.rts.append(task)
        if not self._initial_phase_requested:
            self._initial_phase_requested = True
            # fire the very first init from the root at t=0
            self.machine.sim.schedule(0.0, self._initiate, self._root)

    def place_child(self, node: int, task: int) -> None:
        st = self.states[node]
        pinned = self.driver.trace.task(task).pinned is not None
        if pinned:
            self.worker(node).enqueue(task)
        elif self.local_policy is LocalPolicy.EAGER:
            st.rts.append(task)
        else:
            self.worker(node).enqueue(task)
        if st.asleep and not pinned:
            # New reschedulable work in a quiescent system: wake everyone
            # with a fresh system phase so the work gets scheduled, not
            # hoarded.  (A pinned task cannot migrate, so it just runs
            # here — waking the machine for it would loop: the gather
            # would still see zero schedulable tasks.)
            st.asleep = False
            if st.mode is _Mode.USER:
                self._initiate(node)

    def place_released(self, node: int, task: int) -> None:
        # Wave-barrier-released tasks behave like freshly generated ones.
        self.place_child(node, task)

    def on_wave_released(self, wave: int) -> None:
        """A new wave appeared: schedule it with a fresh system phase
        (one per reachability component while partitioned)."""
        for root in self._roots:
            self._initiate(root)

    # ------------------------------------------------------------------
    # fail-stop / membership recovery
    # ------------------------------------------------------------------
    def on_node_crashed(self, dead: int) -> list[int]:
        """Hand the dead node's pooled tasks back to the driver for
        rescue, then rebuild the protocol over the survivors."""
        machine = self.machine
        st_dead = self.states[dead]
        st_dead.mode = _Mode.DONE
        rescued = st_dead.pool + st_dead.rts + st_dead.pinned_hold
        st_dead.pool = []
        st_dead.rts = []
        st_dead.pinned_hold = []
        tr = self.tracer
        if tr is not None:
            # close any phase sub-span the dead node left open
            now = machine.sim.now
            for name in ("transfer", "gather", "init"):
                tr.end(dead, "phase", name, now, {"outcome": "crashed"})
        self._membership_changed()
        return rescued

    def on_node_rejoined(self, rank: int) -> None:
        """A falsely-declared-dead node refuted and rejoined: give it a
        fresh protocol state (its old one was written off at the false
        death) and fold it back into the trees."""
        self.states[rank] = _NodeState()
        self._membership_changed()

    def on_node_joined(self, rank: int) -> None:
        """A node was admitted at a membership epoch commit.  Give it a
        fresh protocol state synced to the current phase number and
        rebuild the forests over the grown member set — synchronously,
        before the driver enables its worker, so the first gather the
        new member contributes to already expects it."""
        self.states[rank] = _NodeState()
        self._membership_changed()

    def on_node_departing(self, rank: int) -> list[int]:
        """A draining member hands its pooled work back (zero losses —
        the driver re-places every returned task on survivors) and the
        forests rebuild over the shrunk member set."""
        st = self.states[rank]
        st.mode = _Mode.DONE
        handed = st.pool + st.rts + st.pinned_hold
        st.pool = []
        st.rts = []
        st.pinned_hold = []
        tr = self.tracer
        if tr is not None:
            now = self.machine.sim.now
            for name in ("transfer", "gather", "init"):
                tr.end(rank, "phase", name, now, {"outcome": "departed"})
        self._membership_changed()
        return handed

    def _on_membership_event(self, event: str) -> None:
        """Injector callback: a scheduled mesh cut began or healed, or a
        root election committed a new coordinator."""
        self._membership_changed()

    def _current_groups(self, alive: list[int]) -> list[list[int]]:
        """Reachability components restricted to usable ranks."""
        inj = self.machine.faults
        if inj is None:
            return [list(alive)]
        alive_set = set(alive)
        groups = [[r for r in comp if r in alive_set]
                  for comp in inj.components()]
        return [g for g in groups if g]

    def _group_roots(self, groups: list[list[int]]) -> list[int]:
        """One protocol root per component: the *elected* membership
        root where it participates, the smallest usable rank elsewhere
        (crash-only plans have no elected root and keep the min rule)."""
        inj = self.machine.faults
        mgr = inj.membership if inj is not None else None
        elected = mgr.root if mgr is not None else None
        return [elected if elected in g else g[0] for g in groups]

    def _membership_changed(self, kick: bool = True) -> None:
        """Rebuild the protocol over the current membership epoch.

        Handles crashes, partitions, heals, rejoins, joins, leaves, and
        elections uniformly: pick one root per reachability component
        (the elected membership root where present, else its smallest
        usable rank) and rebuild every collective as a *forest* over the
        components — each component then runs system phases locally;
        abandon any system phase caught mid-flight (nodes revert to USER
        with their tasks back in their RTE queues); re-synchronize phase
        counters so the next phase has one consistent number per
        component; and kick every node so idle ones re-arm phase
        detection on their own (``kick=False`` at attach time, before
        the driver has started).
        """
        machine = self.machine
        alive = machine.alive_ranks()
        groups = self._current_groups(alive)
        roots = self._group_roots(groups)
        self._roots = roots
        self._root = roots[0]
        n = machine.num_nodes
        parent = [-2] * n
        children: list[list[int]] = [[] for _ in range(n)]
        for g, g_root in zip(groups, roots):
            g_parent, g_children = survivor_tree(machine.topology, g, g_root)
            for r in g:
                parent[r] = g_parent[r]
                children[r] = g_children[r]
        self._tree_parent, self._tree_children = parent, children
        self._gather.rebuild_groups(groups, roots=roots)
        self._bcast_init.set_groups(groups)
        self._bcast_ctrl.set_groups(groups)
        abandoned = 0
        for rank in alive:
            st = self.states[rank]
            if st.mode is _Mode.DONE:
                continue
            if st.mode in (_Mode.SYSTEM, _Mode.STOPPING):
                # abandon: put pooled work back and return to the user phase
                abandoned = max(abandoned, st.target_phase)
                worker = self.worker(rank)
                for tid in st.pinned_hold:
                    worker.enqueue(tid, front=True)
                for tid in st.pool:
                    worker.enqueue(tid)
                st.pinned_hold.clear()
                st.pool = []
                st.completed_phase = max(st.completed_phase, st.target_phase)
                st.mode = _Mode.USER
                worker.enabled = True
                tr = self.tracer
                if tr is not None:
                    # close whichever phase sub-span was open on this node
                    now = machine.sim.now
                    tr.end(rank, "phase", "transfer", now)
                    tr.end(rank, "phase", "gather", now)
                    tr.end(rank, "phase", "init", now)
            st.pending_init = 0
            st.ready_counts.clear()
        if abandoned:
            self.abandoned_phases += 1
            self._max_abandoned = max(self._max_abandoned, abandoned)
            self._gather.discard_rounds_below(abandoned + 1)
        # one consistent phase number across survivors (ALL-policy ready
        # targets must agree, or the root never sees a full count)
        sync = max(self.states[r].completed_phase for r in alive)
        for rank in alive:
            st = self.states[rank]
            if st.mode is _Mode.DONE:
                continue
            st.completed_phase = sync
            st.target_phase = sync
            st.initiated_phase = min(st.initiated_phase, sync)
            st.ready_sent_phase = min(st.ready_sent_phase, sync)
        # After the driver finishes re-placing rescued tasks (it runs
        # synchronously after this callback), kick every survivor so an
        # idle one re-arms phase detection instead of waiting forever.
        if kick:
            for rank in alive:
                machine.sim.schedule(0.0, self._post_crash_kick, rank)

    def _post_crash_kick(self, rank: int) -> None:
        st = self.states[rank]
        node = self.machine.nodes[rank]
        if (st.mode is not _Mode.USER or node.crashed
                or node.membership != "member"):
            return
        worker = self.worker(rank)
        worker.try_start()
        if worker.rte_empty and not st.asleep:
            self.on_idle(rank)

    # ------------------------------------------------------------------
    # user-phase triggers
    # ------------------------------------------------------------------
    def on_task_complete(self, node: int, task: int) -> None:
        st = self.states[node]
        if st.mode is _Mode.STOPPING and self.worker(node).outstanding is None:
            self._enter_system_phase(node)

    def on_idle(self, node: int) -> None:
        rank = node
        st = self.states[rank]
        if st.mode is not _Mode.USER or st.asleep:
            return
        if self.global_policy is GlobalPolicy.ANY:
            if st.initiated_phase <= st.completed_phase:
                st.initiated_phase = st.completed_phase + 1
                # Randomized backoff before broadcasting init: when many
                # nodes drain at once (common right after a phase hands a
                # few nodes zero tasks), all of them would flood the mesh
                # with redundant init broadcasts.  A short stagger lets
                # the first broadcast suppress the rest — the software
                # stand-in for the Cray T3D eureka or-barrier the paper
                # recommends for the ANY policy.
                lat = self.machine.latency
                horizon = 2.0 * self.machine.topology.diameter() * lat.per_hop
                delay = float(self.machine.rng.uniform(0.0, horizon))
                self.machine.sim.schedule(
                    delay, self._initiate_if_still_needed, rank,
                    st.initiated_phase,
                )
        else:
            self._maybe_send_ready(rank)

    def _initiate_if_still_needed(self, rank: int, phase: int) -> None:
        st = self.states[rank]
        if (
            st.mode is _Mode.USER
            and not st.asleep
            and st.completed_phase + 1 == phase
            and self.worker(rank).rte_empty
        ):
            self._initiate(rank)

    def _initiate(self, rank: int) -> None:
        if self._hardened:
            node = self.machine.nodes[rank]
            if node.crashed or node.departed:
                # raw sim-scheduled triggers (backoff timers, wave
                # releases) are not gated by dispatch; a dead or
                # departed node must not initiate
                return
        st = self.states[rank]
        self._bcast_init.broadcast(rank, st.completed_phase + 1)

    # ------------------------------------------------------------------
    # ALL policy: the ready-signal tree
    # ------------------------------------------------------------------
    def _maybe_send_ready(self, rank: int) -> None:
        st = self.states[rank]
        if st.mode is not _Mode.USER or st.asleep:
            return
        target = st.completed_phase + 1
        if st.ready_sent_phase >= target:
            return
        if not self.worker(rank).rte_empty:
            return
        if st.ready_counts.get(target, 0) < len(self._tree_children[rank]):
            return
        st.ready_sent_phase = target
        if self._tree_parent[rank] == -1:  # a (forest) root
            self._initiate(rank)
        else:
            self.machine.node(rank).send(
                self._tree_parent[rank], "rips.ready", target, reliable=True
            )

    def _on_ready(self, msg: Message) -> None:
        st = self.states[msg.dest]
        target = msg.payload
        st.ready_counts[target] = st.ready_counts.get(target, 0) + 1
        self._maybe_send_ready(msg.dest)

    # ------------------------------------------------------------------
    # phase switch: init -> stop -> contribute
    # ------------------------------------------------------------------
    def _on_init(self, rank: int, phase: int) -> None:
        st = self.states[rank]
        if st.mode is _Mode.DONE or phase <= st.completed_phase:
            return
        if st.mode in (_Mode.SYSTEM, _Mode.STOPPING):
            # still completing the previous system phase; remember the init
            if phase > st.target_phase:
                st.pending_init = max(st.pending_init, phase)
            return
        st.mode = _Mode.STOPPING
        st.target_phase = phase
        tr = self.tracer
        if tr is not None:
            tr.begin(rank, "phase", "init", self.machine.sim.now,
                     {"phase": phase})
        worker = self.worker(rank)
        worker.enabled = False
        if worker.outstanding is None:
            self._enter_system_phase(rank)
        # else: on_task_complete finishes the stop

    def _enter_system_phase(self, rank: int) -> None:
        st = self.states[rank]
        worker = self.worker(rank)
        st.mode = _Mode.SYSTEM
        st.incoming_expected = 0
        st.incoming_got = 0
        st.plan_received = False
        # Collect every reschedulable task: leftover RTE + (eager) RTS.
        leftovers = worker.drain()
        pool: list[int] = []
        trace = self.driver.trace
        for tid in leftovers + st.rts:
            if trace.task(tid).pinned is not None:
                st.pinned_hold.append(tid)
            else:
                pool.append(tid)
        st.rts.clear()
        st.pool = pool
        tr = self.tracer
        if tr is not None:
            now = self.machine.sim.now
            tr.end(rank, "phase", "init", now)
            tr.begin(rank, "phase", "gather", now,
                     {"phase": st.target_phase, "pooled": len(pool)})
        self._gather.contribute(rank, st.target_phase, {rank: len(pool)})

    # ------------------------------------------------------------------
    # root: plan and distribute
    # ------------------------------------------------------------------
    def _plan_over_survivors(
        self, loads: np.ndarray, alive: list[int]
    ) -> RedistributionPlan:
        """Centralized greedy plan once the machine has holes in it.

        The regular planners (MWA et al.) assume the full topology; with
        fail-stopped (or departed) ranks the quota lattice no longer
        exists, so the root falls back to the shared surplus/deficit
        pairing of :func:`greedy_subset_plan`.
        """
        return greedy_subset_plan(self.machine.topology, loads, alive)

    def _on_loads_gathered(self, phase: int, loads_by_rank: dict[int, int]) -> None:
        machine = self.machine
        if self._hardened and phase <= self._max_abandoned:
            return  # stale round from before a crash rebuilt the tree
        n = machine.num_nodes
        loads = np.zeros(n, dtype=np.int64)
        for r, c in loads_by_rank.items():
            loads[r] = c
        total = int(loads.sum())
        if self._hardened:
            # This result belongs to one gather-forest component: exactly
            # the ranks that contributed.  Its root is the smallest member
            # (how the forest was built; a crashed root cannot complete a
            # round, so the min is usable).  Plan only over members still
            # usable *now* — one may have crashed after contributing,
            # inside the detection window.
            nodes = machine.nodes
            ranks = [r for r in sorted(loads_by_rank)
                     if not nodes[r].crashed and not nodes[r].fenced
                     and nodes[r].membership == "member"]
            root_rank = min(loads_by_rank)
            mgr = machine.faults.membership
            if mgr is not None and mgr.root in ranks:
                # the forest was rooted at the *elected* root; the plan
                # must be computed (and charged) where the gather landed
                root_rank = mgr.root
        else:
            ranks = list(range(n))
            root_rank = self._root
        root = machine.node(root_rank)
        if total == 0:
            kind = "done" if self.driver.finished else "sleep"
            root.exec_cpu(
                self.plan_compute_per_node, "overhead",
                self._bcast_ctrl.broadcast, root_rank, (phase, kind),
            )
            return
        if len(ranks) < n:
            plan = self._plan_over_survivors(loads, ranks)
        else:
            plan = self._planner.plan(loads)
        inj = machine.faults
        if inj is not None and inj.obs_rich:
            # the RIPS balance invariant, per component: post-plan quotas
            # among the participating ranks may differ by at most 1
            quotas = [int(plan.quotas[r]) for r in ranks]
            spread = max(quotas) - min(quotas)
            self.max_quota_spread = max(self.max_quota_spread, spread)
            tr = self.tracer
            if tr is not None:
                tr.instant(root_rank, "phase", "phase-balance",
                           machine.sim.now,
                           {"phase": phase, "spread": spread,
                            "ranks": len(ranks)})
        self.num_phases += 1
        self.migrated_tasks += sum(c for (_s, _d, c) in plan.transfers)
        self.plan_cost_total += plan.cost
        outgoing: dict[int, list[tuple[int, int]]] = {r: [] for r in ranks}
        incoming = [0] * n
        for (s, d, c) in plan.transfers:
            outgoing[s].append((d, c))
            incoming[d] += c

        plan_time = self.plan_compute_per_node * n
        # planner computation charged at the root (the array-level stand-in
        # for the distributed 3(n1+n2)-step algorithm; see DESIGN.md)
        root.exec_cpu(plan_time, "overhead", self._send_plans,
                      root_rank, phase, total, plan, outgoing, incoming,
                      ranks, plan_time)

    def _send_plans(self, root_rank: int, phase: int, total: int,
                    plan: RedistributionPlan, outgoing: dict, incoming: list,
                    ranks: Sequence[int], plan_time: float) -> None:
        root = self.machine.node(root_rank)
        tr = self.tracer
        if tr is not None:
            tr.complete(root_rank, "phase", "plan",
                        self.machine.sim.now - plan_time, plan_time,
                        {"phase": phase, "total_load": total,
                         "transfers": len(plan.transfers),
                         "plan_cost": plan.cost})
        for r in ranks:
            root.send(
                r, "rips.plan",
                (phase, outgoing[r], incoming[r]),
                size=32 + 12 * len(outgoing[r]),
                reliable=True,
            )

    def _on_ctrl(self, rank: int, payload: tuple[int, str]) -> None:
        phase, kind = payload
        st = self.states[rank]
        if phase < st.target_phase or st.mode is _Mode.DONE:
            return
        if self._hardened and (phase <= self._max_abandoned
                              or st.mode is not _Mode.SYSTEM):
            # sleep/done for an abandoned phase, or arriving at a node the
            # recovery already reverted to USER: stale, drop it (a stale
            # "sleep" honored here would quiesce a node that holds work)
            return
        tr = self.tracer
        if tr is not None:
            tr.end(rank, "phase", "gather", self.machine.sim.now,
                   {"outcome": kind})
        if kind == "done":
            st.mode = _Mode.DONE
            st.completed_phase = phase
            return
        # sleep: resume the user phase quiescently
        st.asleep = True
        self._resume(rank, phase)

    # ------------------------------------------------------------------
    # node: execute the plan
    # ------------------------------------------------------------------
    def _on_plan(self, msg: Message) -> None:
        phase, outgoing, incoming = msg.payload
        rank = msg.dest
        st = self.states[rank]
        if st.mode is not _Mode.SYSTEM or phase != st.target_phase:
            if self._hardened and phase <= max(st.completed_phase,
                                               self._max_abandoned):
                return  # stale plan for a phase recovery abandoned
            raise RuntimeError(
                f"node {rank}: unexpected plan for phase {phase} in {st.mode}"
            )
        st.plan_received = True
        st.incoming_expected = incoming
        tr = self.tracer
        if tr is not None:
            now = self.machine.sim.now
            tr.end(rank, "phase", "gather", now, {"outcome": "plan"})
            tr.begin(rank, "phase", "transfer", now,
                     {"phase": phase, "outgoing": len(outgoing),
                      "incoming": incoming})
        created_at = self.driver.created_at
        # Prefer forwarding tasks that are already non-local so that local
        # tasks stay local (this realizes Theorem 2's bound end-to-end).
        st.pool.sort(key=lambda tid: 0 if created_at[tid] != rank else 1)
        for dest, count in outgoing:
            batch = st.pool[:count]
            del st.pool[:count]
            if len(batch) != count:  # pragma: no cover - plan is consistent
                raise RuntimeError("plan asked for more tasks than pooled")
            self.send_tasks(rank, dest, batch)
        self._maybe_resume(rank)

    def on_tasks_received(self, node: int, tasks: Sequence[int]) -> None:
        st = self.states[node]
        if st.mode is _Mode.SYSTEM:
            st.incoming_got += len(tasks)
            self._maybe_resume(node)
        else:
            st.asleep = False

    def _maybe_resume(self, rank: int) -> None:
        st = self.states[rank]
        if st.mode is _Mode.SYSTEM and st.plan_received and \
                st.incoming_got >= st.incoming_expected:
            st.asleep = False
            self._resume(rank, st.target_phase)

    def _resume(self, rank: int, phase: int) -> None:
        st = self.states[rank]
        worker = self.worker(rank)
        tr = self.tracer
        if tr is not None:
            now = self.machine.sim.now
            tr.end(rank, "phase", "transfer", now)
            tr.instant(rank, "phase", "resume", now, {"phase": phase})
        # Everything left in the pool plus pinned tasks re-enter the RTE
        # queue; migrated-in tasks were enqueued on arrival.
        for tid in st.pinned_hold:
            worker.enqueue(tid, front=True)
        for tid in st.pool:
            worker.enqueue(tid)
        st.pinned_hold.clear()
        st.pool = []
        st.completed_phase = phase
        st.target_phase = phase
        st.mode = _Mode.USER
        for p in [p for p in st.ready_counts if p <= phase]:
            del st.ready_counts[p]
        worker.enabled = True
        pending = st.pending_init
        st.pending_init = 0
        if pending > phase:
            self._on_init(rank, pending)
            return
        trace = self.driver.trace
        reschedulable = bool(st.rts) or any(
            trace.task(tid).pinned is None for tid in worker.queue
        )
        if st.asleep and reschedulable:
            # Went to sleep while reschedulable work slipped in (late
            # spawns): reschedule.  Pinned tasks do not count — they run
            # locally below and cannot be redistributed anyway.
            st.asleep = False
            self._initiate(rank)
            return
        worker.try_start()
        # A node that came out of the phase with nothing to do triggers the
        # next transfer (unless the whole system was put to sleep).
        if worker.rte_empty and not st.asleep:
            self.on_idle(rank)

    # ------------------------------------------------------------------
    def finalize_metrics(self, metrics: RunMetrics) -> None:
        metrics.system_phases = self.num_phases
        metrics.extra["migrated_tasks"] = self.migrated_tasks
        metrics.extra["plan_cost_total"] = self.plan_cost_total
        metrics.extra["local_policy"] = self.local_policy.value
        metrics.extra["global_policy"] = self.global_policy.value
        if self.abandoned_phases:
            metrics.extra["abandoned_phases"] = self.abandoned_phases
        inj = self.machine.faults if self.machine is not None else None
        if inj is not None and inj.obs_rich:
            metrics.extra["max_quota_spread"] = self.max_quota_spread
