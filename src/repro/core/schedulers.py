"""Redistribution planners: the system-phase scheduling algorithms.

A planner answers one question for a system phase: given the task count
``w_r`` at every rank, what does each node end with (quota) and which
end-to-end transfers realize it?  RIPS (Section 3) uses the Mesh Walking
Algorithm on meshes and the paper points at tree/hypercube variants
([25], [32]); we implement all of them plus the min-cost-flow optimum
(used for ablations) behind one interface:

``plan(loads) -> RedistributionPlan`` with ``quotas`` and ``transfers``
(a list of ``(src, dst, count)``); transfer *cost* is the paper's
``sum_k e_k`` objective.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.machine.topology import (
    HypercubeTopology,
    MeshTopology,
    Topology,
    TreeTopology,
)
from .mwa import mwa_schedule, quotas_row_major

__all__ = [
    "RedistributionPlan",
    "Planner",
    "MeshWalkPlanner",
    "TreeWalkPlanner",
    "DimensionExchangePlanner",
    "OptimalPlanner",
    "default_planner",
    "greedy_subset_plan",
]


@dataclass
class RedistributionPlan:
    """Outcome of one planning round."""

    quotas: np.ndarray  # (N,) final task count per rank
    transfers: list[tuple[int, int, int]]  # (src, dst, count)
    cost: int  # task-edge crossings (sum_k e_k)
    comm_steps: int  # communication steps of the distributed algorithm

    def outgoing(self, rank: int) -> list[tuple[int, int]]:
        """``(dest, count)`` list for one source rank."""
        return [(d, c) for (s, d, c) in self.transfers if s == rank]

    def incoming_count(self, rank: int) -> int:
        return sum(c for (_s, d, c) in self.transfers if d == rank)


class Planner(ABC):
    """Base class of the system-phase scheduling algorithms."""

    name: str = "abstract"

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    @abstractmethod
    def plan(self, loads: np.ndarray) -> RedistributionPlan:
        """Compute the redistribution for a rank-indexed load vector."""

    def _check(self, loads: np.ndarray) -> np.ndarray:
        w = np.asarray(loads, dtype=np.int64)
        if w.shape != (self.topology.num_nodes,):
            raise ValueError(
                f"loads must have shape ({self.topology.num_nodes},)"
            )
        if np.any(w < 0):
            raise ValueError("negative loads")
        return w


def _decompose_edge_flows(
    num_nodes: int,
    surplus: np.ndarray,
    flows: dict[tuple[int, int], int],
) -> list[tuple[int, int, int]]:
    """Generic acyclic flow decomposition into (src, dst, count) moves.

    ``flows`` maps directed edges to positive amounts; the field must
    conserve flow against ``surplus`` and contain no directed cycles.
    """
    out: dict[int, dict[int, int]] = {}
    for (a, b), f in flows.items():
        if f > 0:
            out.setdefault(a, {})[b] = f
    bal = surplus.astype(int).tolist()
    transfers: dict[tuple[int, int], int] = {}
    for src in range(num_nodes):
        while bal[src] > 0:
            path = [src]
            node = src
            while bal[node] >= 0 or node == src:
                edges = out.get(node)
                if not edges:
                    raise RuntimeError("flow conservation violated")
                node = next(iter(edges))
                path.append(node)
                if bal[node] < 0:
                    break
            amount = min(
                bal[src], -bal[node],
                *(out[a][b] for a, b in zip(path, path[1:])),
            )
            for a, b in zip(path, path[1:]):
                out[a][b] -= amount
                if out[a][b] == 0:
                    del out[a][b]
                    if not out[a]:
                        del out[a]
            bal[src] -= amount
            bal[node] += amount
            key = (src, node)
            transfers[key] = transfers.get(key, 0) + amount
    return [(a, b, c) for (a, b), c in sorted(transfers.items())]


class MeshWalkPlanner(Planner):
    """The paper's Mesh Walking Algorithm (see :mod:`repro.core.mwa`)."""

    name = "mwa"

    def __init__(self, topology: Topology) -> None:
        if not isinstance(topology, MeshTopology):
            raise TypeError("MeshWalkPlanner requires a MeshTopology")
        super().__init__(topology)

    def plan(self, loads: np.ndarray) -> RedistributionPlan:
        w = self._check(loads)
        mesh: MeshTopology = self.topology  # type: ignore[assignment]
        res = mwa_schedule(w.reshape(mesh.n1, mesh.n2))
        return RedistributionPlan(
            quotas=res.quotas.ravel(),
            transfers=res.transfers,
            cost=res.cost,
            comm_steps=res.comm_steps,
        )


class TreeWalkPlanner(Planner):
    """Optimal redistribution on a tree (the paper's reference [25]).

    On a tree the optimal flow is forced: the flow across the edge above
    node ``v`` equals the subtree's surplus.  Runs in two sweeps; the
    distributed version takes O(tree height) communication steps.
    """

    name = "treewalk"

    def __init__(self, topology: Topology) -> None:
        if not isinstance(topology, TreeTopology):
            raise TypeError("TreeWalkPlanner requires a TreeTopology")
        super().__init__(topology)

    def plan(self, loads: np.ndarray) -> RedistributionPlan:
        w = self._check(loads)
        tree: TreeTopology = self.topology  # type: ignore[assignment]
        n = tree.num_nodes
        q = quotas_row_major(1, n, int(w.sum())).ravel()
        surplus = w - q
        # subtree surplus via reverse-rank order (children have larger rank)
        sub = surplus.astype(np.int64).copy()
        for v in range(n - 1, 0, -1):
            sub[tree.parent(v)] += sub[v]
        flows: dict[tuple[int, int], int] = {}
        cost = 0
        for v in range(1, n):
            p = tree.parent(v)
            f = int(sub[v])  # >0: v sends up; <0: parent sends down
            if f > 0:
                flows[(v, p)] = f
            elif f < 0:
                flows[(p, v)] = -f
            cost += abs(f)
        transfers = _decompose_edge_flows(n, surplus, flows)
        height = max(len(tree._ancestors(v)) for v in range(n)) - 1
        return RedistributionPlan(
            quotas=q, transfers=transfers, cost=cost,
            comm_steps=3 * max(height, 1),
        )


class DimensionExchangePlanner(Planner):
    """Cybenko's dimension-exchange method on a hypercube (reference [8]).

    In round ``b`` every node pair differing in bit ``b`` equalizes their
    (aggregate) loads.  We run it on exact integer counts: the pair
    member with the lower rank keeps the ceiling.  DEM does *not* reach
    the row-major quota vector and can move more tasks than necessary —
    the redundancy the paper criticizes; the ablation benchmark
    quantifies it.
    """

    name = "dem"

    def __init__(self, topology: Topology) -> None:
        if not isinstance(topology, HypercubeTopology):
            raise TypeError("DimensionExchangePlanner requires a HypercubeTopology")
        super().__init__(topology)

    def plan(self, loads: np.ndarray) -> RedistributionPlan:
        w = self._check(loads)
        cube: HypercubeTopology = self.topology  # type: ignore[assignment]
        n = cube.num_nodes
        cur = w.astype(np.int64).copy()
        flows: dict[tuple[int, int], int] = {}
        cost = 0
        for b in range(cube.dim):
            bit = 1 << b
            for r in range(n):
                mate = r ^ bit
                if r > mate:
                    continue
                total = int(cur[r] + cur[mate])
                keep_low = (total + 1) // 2
                delta = int(cur[r]) - keep_low  # >0: r sends to mate
                if delta > 0:
                    flows[(r, mate)] = flows.get((r, mate), 0) + delta
                elif delta < 0:
                    flows[(mate, r)] = flows.get((mate, r), 0) - delta
                cost += abs(delta)
                cur[r] = keep_low
                cur[mate] = total - keep_low
        # net the per-edge flows (opposite directions cancel)
        net: dict[tuple[int, int], int] = {}
        for (a, b_), f in flows.items():
            rev = net.pop((b_, a), 0)
            if rev > f:
                net[(b_, a)] = rev - f
            elif f > rev:
                net[(a, b_)] = f - rev
        surplus = w - cur
        transfers = _decompose_edge_flows(n, surplus, net)
        return RedistributionPlan(
            quotas=cur, transfers=transfers, cost=cost,
            comm_steps=cube.dim,
        )


class OptimalPlanner(Planner):
    """Min-cost-flow optimal redistribution (ablation reference).

    Not a realistic runtime algorithm (the paper: "This high complexity
    is not realistic for runtime scheduling") but the gold standard the
    others are measured against.
    """

    name = "optimal"

    def plan(self, loads: np.ndarray) -> RedistributionPlan:
        w = self._check(loads)
        n = self.topology.num_nodes
        q = quotas_row_major(1, n, int(w.sum())).ravel()
        flows: dict[tuple[int, int], int] = {}
        # optimal_redistribution only reports undirected edge totals; we
        # need directions for the decomposition, so solve here directly.
        from repro.optimal.mincostflow import INF, MinCostFlow

        g = MinCostFlow(n + 2)
        s, t = n, n + 1
        edge_arcs = []
        for (u, v) in self.topology.edges():
            e1 = g.add_edge(u, v, INF, 1)
            e2 = g.add_edge(v, u, INF, 1)
            edge_arcs.append((u, v, e1, e2))
        surplus = w - q
        for i in range(n):
            if surplus[i] > 0:
                g.add_edge(s, i, int(surplus[i]), 0)
            elif surplus[i] < 0:
                g.add_edge(i, t, int(-surplus[i]), 0)
        res = g.solve(s, t)
        for (u, v, e1, e2) in edge_arcs:
            f1, f2 = res.edge_flows[e1], res.edge_flows[e2]
            net = f1 - f2
            if net > 0:
                flows[(u, v)] = net
            elif net < 0:
                flows[(v, u)] = -net
        transfers = _decompose_edge_flows(n, surplus, flows)
        return RedistributionPlan(
            quotas=q, transfers=transfers, cost=res.cost,
            comm_steps=0,
        )


def greedy_subset_plan(
    topology: Topology, loads: np.ndarray, ranks: list[int]
) -> RedistributionPlan:
    """Centralized greedy plan over an arbitrary rank subset.

    The regular planners (MWA et al.) assume the full topology; once the
    machine has holes in it — fail-stopped ranks, standby ranks awaiting
    admission, members drained out of an elastic mesh — the quota lattice
    no longer exists.  Fall back to pairing surplus and deficit ranks in
    rank order, costing each transfer by its hop distance.  Balance
    (``|load_i - load_j| <= 1`` over ``ranks``) still holds.
    """
    total = int(sum(loads[r] for r in ranks))
    base, extra = divmod(total, len(ranks))
    quotas = np.zeros(len(loads), dtype=np.int64)
    for i, r in enumerate(ranks):
        quotas[r] = base + (1 if i < extra else 0)
    donors = [[r, int(loads[r] - quotas[r])] for r in ranks
              if loads[r] > quotas[r]]
    takers = [[r, int(quotas[r] - loads[r])] for r in ranks
              if loads[r] < quotas[r]]
    transfers: list[tuple[int, int, int]] = []
    cost = 0
    di = ti = 0
    while di < len(donors) and ti < len(takers):
        src, have = donors[di]
        dst, need = takers[ti]
        count = min(have, need)
        transfers.append((src, dst, count))
        cost += count * topology.distance(src, dst)
        donors[di][1] -= count
        takers[ti][1] -= count
        if donors[di][1] == 0:
            di += 1
        if takers[ti][1] == 0:
            ti += 1
    return RedistributionPlan(
        quotas=quotas, transfers=transfers, cost=cost, comm_steps=0)


def default_planner(topology: Topology) -> Planner:
    """Pick the paper-appropriate planner for a topology."""
    if isinstance(topology, MeshTopology):
        # includes the torus (MWA simply ignores the wraparound links)
        return MeshWalkPlanner(topology)
    if isinstance(topology, TreeTopology):
        return TreeWalkPlanner(topology)
    if isinstance(topology, HypercubeTopology):
        return DimensionExchangePlanner(topology)
    return OptimalPlanner(topology)
