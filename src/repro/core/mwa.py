"""The Mesh Walking Algorithm (MWA) — Section 3 of the paper.

Given an ``n1 x n2`` mesh where node ``(i, j)`` holds ``w[i, j]`` equal-
sized tasks, MWA redistributes tasks so that every node ends with its
*quota* — ``floor(T/N)`` or ``floor(T/N)+1`` tasks, the ``+1`` going to
the first ``T mod N`` nodes in row-major order.  The algorithm runs in
``3(n1+n2)`` communication steps on the mesh:

1. scan load vectors along each row;
2. scan-with-sum down the last column to get the total ``T``; broadcast
   ``wavg``/``R`` and spread the row prefix sums;
3. every node computes its quota ``q[i,j]`` and the row-accumulated
   quotas ``Q_i``;
4. balance *between* rows: the cumulative flow across the boundary
   between row ``i`` and ``i+1`` is ``y_i = t_i - Q_i`` (cumulative load
   minus cumulative quota); each boundary's flow is carried column-wise,
   allocated greedily left-to-right over the nodes' current excess
   (the paper's ``delta``/``eta``/``gamma`` vectors);
5. balance *within* each row by prefix flows (the ``z``/``v`` vectors).

This module is the *array-level* implementation: it computes, exactly,
the flows and final assignment the distributed algorithm produces, using
vectorized NumPy where the data parallelism allows.  The message-level
implementation on the simulated machine lives in
:mod:`repro.core.mwa_protocol`; the two are checked against each other
in the test suite.

Guarantees reproduced here (and property-tested):

* **Theorem 1** — final loads differ by at most one;
* **Theorem 2** — the number of non-local tasks is the minimum
  ``m = sum(wavg - w_j)`` over underloaded nodes ``j`` (when ``T`` is
  divisible by ``N``);
* **Lemma 2** — for <= 4 processors the total transfer cost
  ``sum_k e_k`` is minimal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MWAResult", "mwa_schedule", "quotas_row_major"]


def quotas_row_major(n1: int, n2: int, total: int) -> np.ndarray:
    """Per-node quotas: ``wavg`` everywhere, ``+1`` for the first
    ``total mod N`` nodes in row-major order (paper, step 3)."""
    n = n1 * n2
    wavg, r = divmod(int(total), n)
    q = np.full(n, wavg, dtype=np.int64)
    q[:r] += 1
    return q.reshape(n1, n2)


@dataclass
class MWAResult:
    """Everything MWA decides for one scheduling round.

    Attributes
    ----------
    quotas:
        ``(n1, n2)`` final task count per node.
    vflow:
        ``(n1-1, n2)``; ``vflow[i, k]`` tasks cross the vertical edge
        between ``(i, k)`` and ``(i+1, k)``; positive means downward
        (row ``i`` to row ``i+1``).
    hflow:
        ``(n1, n2-1)``; ``hflow[i, j]`` tasks cross the horizontal edge
        between ``(i, j)`` and ``(i, j+1)``; positive means rightward.
    transfers:
        Flow decomposition into end-to-end moves
        ``(src_rank, dst_rank, count)``: ``src`` is overloaded, ``dst``
        underloaded, and total hop-cost is preserved.
    cost:
        ``sum_k e_k``, total tasks crossing edges (the paper's objective).
    nonlocal_tasks:
        Tasks that leave their origin node, ``sum max(0, w - q)``.
    """

    quotas: np.ndarray
    vflow: np.ndarray
    hflow: np.ndarray
    transfers: list[tuple[int, int, int]]
    cost: int
    nonlocal_tasks: int

    @property
    def comm_steps(self) -> int:
        """The paper's step bound for the distributed algorithm."""
        n1, n2 = self.quotas.shape
        return 3 * (n1 + n2)


def _row_allocation(excess: np.ndarray, amount: int,
                    available: np.ndarray) -> np.ndarray:
    """The paper's d/u-vector scan (step 4): allocate ``amount`` vertical
    transfers over a row's columns.

    ``excess[k]`` is the node's current surplus ``delta = w - q``;
    ``available[k]`` is its actual task count (a node may ship below its
    quota when the eta/gamma bookkeeping asks it to pass load through).

    The recurrence (eta = remaining vertical need, gamma = unmet deficit
    of the columns already scanned):

        d_k = eta_k              if delta_k >  eta_k + gamma_k
            = delta_k - gamma_k  if eta_k + gamma_k >= delta_k > gamma_k
            = 0                  otherwise
        gamma_{k+1} = gamma_k - (delta_k - d_k)
        eta_{k+1}   = eta_k - d_k

    The gamma term is what distinguishes this from a naive left-to-right
    greedy: a column whose surplus is needed by underloaded columns to
    its *left* holds tasks back, so the vertical transfer is sourced
    from columns whose surplus would otherwise have to travel
    horizontally — this is how MWA keeps the total task-hop count low.
    """
    n = excess.shape[0]
    alloc = np.zeros_like(excess)
    eta = int(amount)
    gamma = 0
    for k in range(n):
        if eta == 0:
            break
        delta = int(excess[k])
        if delta > eta + gamma:
            d = eta
        elif delta > gamma:
            d = delta - gamma
        else:
            d = 0
        d = max(0, min(d, eta, int(available[k])))
        # gamma is "tasks needed by previous nodes" — never negative: a
        # column's leftover surplus covers left deficits but cannot turn
        # the left side into a phantom source (that would make nodes ship
        # below quota and break the locality guarantee of Theorem 2).
        gamma = max(0, gamma - (delta - d))
        eta -= d
        alloc[k] = d
    if eta != 0:  # pragma: no cover - violates the paper's invariant
        raise RuntimeError("row allocation infeasible: excess < amount")
    return alloc


def mwa_schedule(w: np.ndarray) -> MWAResult:
    """Run MWA on a load matrix ``w`` of shape ``(n1, n2)``.

    Returns the flows, the end-to-end transfer plan, and the cost
    measures.  Pure function; ``w`` is not modified.
    """
    w = np.asarray(w)
    if w.ndim != 2:
        raise ValueError("w must be a 2-D (n1 x n2) load matrix")
    if w.size == 0:
        raise ValueError("empty mesh")
    if np.any(w < 0):
        raise ValueError("negative loads")
    if not np.issubdtype(w.dtype, np.integer):
        if not np.all(np.equal(np.mod(w, 1), 0)):
            raise ValueError("loads must be integral")
    w = w.astype(np.int64)
    n1, n2 = w.shape
    total = int(w.sum())

    # Steps 1-3: scans and quota computation (vectorized: the data flow of
    # the distributed scans is exactly a cumulative sum).
    q = quotas_row_major(n1, n2, total)
    s = w.sum(axis=1)  # per-row loads (step 2's s_i)
    t = np.cumsum(s)  # cumulative loads (t_i)
    Q = np.cumsum(q.sum(axis=1))  # row-accumulated quotas (Q_i)
    y = t - Q  # boundary flows (step 4); y[n1-1] == 0

    work = w.copy()
    vflow = np.zeros((max(n1 - 1, 0), n2), dtype=np.int64)

    # Step 4a: downward cascades, top to bottom.  Row i has already
    # received everything from above when boundary i is processed.
    for i in range(n1 - 1):
        if y[i] > 0:
            excess = work[i] - q[i]
            d = _row_allocation(excess, int(y[i]), work[i])
            work[i] -= d
            work[i + 1] += d
            vflow[i] += d

    # Step 4b: upward cascades, bottom to top.
    for i in range(n1 - 2, -1, -1):
        if y[i] < 0:
            excess = work[i + 1] - q[i + 1]
            u = _row_allocation(excess, int(-y[i]), work[i + 1])
            work[i + 1] -= u
            work[i] += u
            vflow[i] -= u

    # Step 5: balance within each row by prefix flows (z/v vectors).
    # g[i, j] = net flow across the edge between columns j and j+1 of
    # row i; positive flows rightward.
    diff = work - q
    hflow = np.cumsum(diff, axis=1)[:, : n2 - 1] if n2 > 1 else np.zeros((n1, 0), dtype=np.int64)
    final = work.copy()
    if n2 > 1:
        final[:, 0] -= hflow[:, 0]
        for j in range(1, n2 - 1):
            final[:, j] += hflow[:, j - 1] - hflow[:, j]
        final[:, n2 - 1] += hflow[:, n2 - 2]
    if not np.array_equal(final, q):  # pragma: no cover - internal check
        raise RuntimeError("MWA did not reach the quota distribution")

    cost = int(np.abs(vflow).sum() + np.abs(hflow).sum())
    nonlocal_tasks = int(np.maximum(w - q, 0).sum())
    transfers = _decompose_flows(w, q, vflow, hflow)
    assert sum(c for _, _, c in transfers) == nonlocal_tasks
    return MWAResult(
        quotas=q,
        vflow=vflow,
        hflow=hflow,
        transfers=transfers,
        cost=cost,
        nonlocal_tasks=nonlocal_tasks,
    )


def _decompose_flows(
    w: np.ndarray, q: np.ndarray, vflow: np.ndarray, hflow: np.ndarray
) -> list[tuple[int, int, int]]:
    """Decompose the edge-flow field into end-to-end transfers.

    The flow field is acyclic (each mesh boundary carries flow in one
    direction only), so repeatedly walking from a surplus node along
    positive-residual flow edges must terminate at a deficit node.  Each
    walk moves the bottleneck amount; the number of walks is O(N).
    """
    n1, n2 = w.shape

    def rank(i: int, j: int) -> int:
        return i * n2 + j

    # Residual out-flow per directed edge, keyed by (src_rank, dst_rank).
    out: dict[int, dict[int, int]] = {}

    def add_edge(a: int, b: int, amount: int) -> None:
        if amount > 0:
            out.setdefault(a, {})[b] = amount

    for i in range(n1 - 1):
        for k in range(n2):
            f = int(vflow[i, k])
            if f > 0:
                add_edge(rank(i, k), rank(i + 1, k), f)
            elif f < 0:
                add_edge(rank(i + 1, k), rank(i, k), -f)
    for i in range(n1):
        for j in range(n2 - 1):
            f = int(hflow[i, j])
            if f > 0:
                add_edge(rank(i, j), rank(i, j + 1), f)
            elif f < 0:
                add_edge(rank(i, j + 1), rank(i, j), -f)

    surplus = (w - q).ravel().astype(int).tolist()
    transfers: dict[tuple[int, int], int] = {}
    for src in range(n1 * n2):
        while surplus[src] > 0:
            # walk along residual flow edges until a deficit node
            path = [src]
            node = src
            while True:
                edges = out.get(node)
                assert edges, "flow conservation violated during decomposition"
                nxt = next(iter(edges))
                path.append(nxt)
                node = nxt
                if surplus[node] < 0:
                    break
            amount = min(
                surplus[src],
                -surplus[node],
                *(out[a][b] for a, b in zip(path, path[1:])),
            )
            assert amount > 0
            for a, b in zip(path, path[1:]):
                out[a][b] -= amount
                if out[a][b] == 0:
                    del out[a][b]
                    if not out[a]:
                        del out[a]
            surplus[src] -= amount
            surplus[node] += amount
            key = (src, node)
            transfers[key] = transfers.get(key, 0) + amount
    return [(a, b, c) for (a, b), c in sorted(transfers.items())]
