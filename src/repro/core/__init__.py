"""RIPS and the parallel scheduling algorithms (the paper's core)."""

from .mwa import MWAResult, mwa_schedule, quotas_row_major
from .mwa_protocol import MWAProtocolResult, run_mwa_protocol
from .rips import GlobalPolicy, LocalPolicy, RIPS
from .schedulers import (
    DimensionExchangePlanner,
    MeshWalkPlanner,
    OptimalPlanner,
    Planner,
    RedistributionPlan,
    TreeWalkPlanner,
    default_planner,
)

__all__ = [
    "DimensionExchangePlanner",
    "GlobalPolicy",
    "LocalPolicy",
    "MWAProtocolResult",
    "MWAResult",
    "MeshWalkPlanner",
    "OptimalPlanner",
    "Planner",
    "RIPS",
    "RedistributionPlan",
    "TreeWalkPlanner",
    "default_planner",
    "mwa_schedule",
    "quotas_row_major",
    "run_mwa_protocol",
]
