"""Message-level Mesh Walking Algorithm on the simulated machine.

:mod:`repro.core.mwa` computes MWA's decisions array-level; this module
runs the *actual distributed protocol* of Figure 3 — five steps of
neighbor-to-neighbor messages on a mesh ``Machine`` — and is checked
against the array version in the test suite (same final distribution,
same edge flows) plus against the paper's ``3(n1+n2)`` communication-
step bound.

Protocol (per node ``(i, j)``, rank ``i*n2 + j``):

1. **Row scan** — load prefix vectors travel left to right; the last
   column learns its row's loads.
2. **Column scan + spread** — row sums ``s_i`` and prefixes ``t_i``
   travel down the last column; the corner computes ``wavg``/``R``;
   the results travel back up the last column and leftward along every
   row (the "broadcast and spread" of the paper, done mesh-style).
3. **Quota computation** — purely local.
4. **Vertical balancing** — per boundary ``i``: if ``y_i > 0`` the
   eta/gamma scan pipelines along row ``i`` left to right, and every
   node sends its ``d`` tasks to the node below (a ``d=0`` message
   still travels so the receiver can proceed); symmetrically upward for
   ``y_i < 0``.  Downward cascades wait on receives from above,
   upward cascades on receives from below and on the node's own
   downward send — the same ordering the array implementation uses.
5. **Horizontal balancing** — a prefix scan of ``w - q`` along each
   row, then task transfers between row neighbors, chunked by the
   sender's current inventory (a node may have to wait for tasks
   arriving from one side before it can forward to the other).

The protocol moves task *counts* (its purpose is validating the
algorithm and its cost; identity-carrying migration lives in the RIPS
runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.machine import Machine, Message
from repro.machine.topology import MeshTopology

__all__ = ["MWAProtocolResult", "run_mwa_protocol", "member_row_bands"]

#: wire size of a scan/control message (a few integers)
CTRL_BYTES = 48


@dataclass
class MWAProtocolResult:
    """Outcome of one distributed MWA round."""

    final: np.ndarray  # (n1, n2) final task counts
    quotas: np.ndarray  # (n1, n2) quota each node computed locally
    vflow: np.ndarray  # (n1-1, n2) net tasks crossing each vertical edge
    hflow: np.ndarray  # (n1, n2-1) net tasks crossing each horizontal edge
    cost: int  # total task-edge crossings
    messages: int
    elapsed: float  # simulated seconds for the whole round


@dataclass
class _NodeState:
    w: int = 0  # current task count
    # step 1/2 knowledge
    row_prefix: Optional[list[int]] = None  # loads of columns 0..j
    s_i: Optional[int] = None
    t_i: Optional[int] = None
    t_prev: Optional[int] = None
    wavg: Optional[int] = None
    remainder: Optional[int] = None
    # step 4 bookkeeping
    recv_above_done: bool = False
    recv_below_done: bool = False
    down_sent: bool = False
    up_sent: bool = False
    down_scan: Optional[tuple[int, int]] = None  # (eta, gamma) from left
    up_scan: Optional[tuple[int, int]] = None
    # step 5 bookkeeping
    h_prefix: Optional[int] = None  # sum of (w - q) for columns < j
    out_right: int = 0
    out_left: int = 0
    in_left: int = 0  # remaining expected from the left
    in_right: int = 0
    # horizontal tasks that arrived before this node entered step 5
    # (a fast neighbor may flush early); they offset in_left/in_right
    early_left: int = 0
    early_right: int = 0
    step5_started: bool = False


class _MWAProtocol:
    """One protocol round; use :func:`run_mwa_protocol`.

    ``rows=(lo, hi)`` restricts the protocol to the horizontal mesh band
    ``lo <= i < hi`` — the component-local MWA a partitioned RIPS run
    walks per reachability component.  Logical row ``i`` maps to physical
    mesh row ``lo + i``; handlers are registered only on band members, so
    several band protocols can run concurrently on one machine.
    """

    def __init__(self, machine: Machine, loads: np.ndarray,
                 rows: Optional[tuple[int, int]] = None,
                 epoch: Optional[int] = None) -> None:
        topo = machine.topology
        if not isinstance(topo, MeshTopology):
            raise TypeError("the MWA protocol requires a MeshTopology machine")
        self.machine = machine
        self.mesh = topo
        #: membership epoch this round belongs to.  When set, every
        #: protocol message is tagged and messages from another epoch are
        #: dropped on receipt — a round started before a join/leave
        #: cannot corrupt the round rebuilt after it.  None (the default)
        #: keeps the wire format of static-membership runs untouched.
        self.epoch = epoch
        #: set by :meth:`cancel` when the epoch moves mid-round.
        self.cancelled = False
        if rows is None:
            rows = (0, topo.n1)
        lo, hi = rows
        if not (0 <= lo < hi <= topo.n1):
            raise ValueError(f"rows must satisfy 0 <= lo < hi <= {topo.n1}")
        self.row_base = lo
        self.n1, self.n2 = hi - lo, topo.n2
        loads = np.asarray(loads, dtype=np.int64)
        if loads.shape != (self.n1, self.n2):
            raise ValueError(f"loads must be ({self.n1}, {self.n2})")
        if np.any(loads < 0):
            raise ValueError("negative loads")
        self.initial = loads.copy()
        self.state = [
            _NodeState(w=int(loads[i, j]))
            for i in range(self.n1)
            for j in range(self.n2)
        ]
        self.vflow = np.zeros((max(self.n1 - 1, 0), self.n2), dtype=np.int64)
        self.hflow = np.zeros((self.n1, max(self.n2 - 1, 0)), dtype=np.int64)
        self._tracer = machine.tracer
        for i in range(self.n1):
            for j in range(self.n2):
                node = machine.nodes[self.rank(i, j)]
                node.on("mwa.rowscan", self._on_rowscan)
                node.on("mwa.colscan", self._on_colscan)
                node.on("mwa.spread", self._on_spread)
                node.on("mwa.down", self._on_down)
                node.on("mwa.up", self._on_up)
                node.on("mwa.hscan", self._on_hscan)
                node.on("mwa.htask", self._on_htask)

    # ------------------------------------------------------------------
    # helpers (logical band coordinates <-> physical mesh ranks)
    # ------------------------------------------------------------------
    def rank(self, i: int, j: int) -> int:
        return self.mesh.rank_of(self.row_base + i, j)

    def coords(self, rank: int) -> tuple[int, int]:
        i, j = self.mesh.coords(rank)
        return i - self.row_base, j

    def st(self, i: int, j: int) -> _NodeState:
        return self.state[i * self.n2 + j]

    def send(self, i: int, j: int, di: int, dj: int, kind: str, payload) -> None:
        if self.epoch is not None:
            payload = (self.epoch, payload)
        self.machine.node(self.rank(i, j)).send(
            self.rank(i + di, j + dj), kind, payload, size=CTRL_BYTES
        )

    def cancel(self) -> None:
        """Abandon the round: all handlers drop everything from now on
        (the membership epoch moved; the rebuilt band protocol of the new
        epoch supersedes this one)."""
        self.cancelled = True

    def _accept(self, msg: Message):
        """Epoch-check a message; ``None`` means drop it unprocessed."""
        if self.cancelled:
            return None
        if self.epoch is None:
            return msg.payload
        ep, payload = msg.payload
        if ep != self.epoch:
            self._mark(msg.dest, "stale-epoch",
                       {"got": ep, "want": self.epoch})
            return None
        return payload

    def _mark(self, rank: int, step: str, args=None) -> None:
        tr = self._tracer
        if tr is not None:
            tr.instant(rank, "mwa", step, self.machine.sim.now, args)

    # ------------------------------------------------------------------
    # step 1: row scans
    # ------------------------------------------------------------------
    def start(self) -> None:
        for i in range(self.n1):
            st = self.st(i, 0)
            st.row_prefix = [st.w]
            if self.n2 > 1:
                self.send(i, 0, 0, 1, "mwa.rowscan", [st.w])
            else:
                self._row_scan_done(i)

    def _on_rowscan(self, msg: Message) -> None:
        payload = self._accept(msg)
        if payload is None:
            return
        i, j = self.coords(msg.dest)
        st = self.st(i, j)
        st.row_prefix = list(payload) + [st.w]
        if j < self.n2 - 1:
            self.send(i, j, 0, 1, "mwa.rowscan", st.row_prefix)
        else:
            self._row_scan_done(i)

    # ------------------------------------------------------------------
    # step 2: column scan down the last column, then spread back
    # ------------------------------------------------------------------
    def _row_scan_done(self, i: int) -> None:
        st = self.st(i, self.n2 - 1)
        st.s_i = sum(st.row_prefix)
        self._mark(self.rank(i, self.n2 - 1), "rowscan-done", {"row": i, "s_i": st.s_i})
        if i == 0:
            st.t_prev = 0
            st.t_i = st.s_i
            self._maybe_corner(i)
            if self.n1 > 1:
                self.send(i, self.n2 - 1, 1, 0, "mwa.colscan", st.t_i)
        elif st.t_prev is not None:
            self._col_absorb(i)

    def _on_colscan(self, msg: Message) -> None:
        payload = self._accept(msg)
        if payload is None:
            return
        i, _j = self.coords(msg.dest)
        st = self.st(i, self.n2 - 1)
        st.t_prev = int(payload)
        if st.s_i is not None:
            self._col_absorb(i)

    def _col_absorb(self, i: int) -> None:
        st = self.st(i, self.n2 - 1)
        st.t_i = st.t_prev + st.s_i
        if i < self.n1 - 1:
            self.send(i, self.n2 - 1, 1, 0, "mwa.colscan", st.t_i)
        self._maybe_corner(i)

    def _maybe_corner(self, i: int) -> None:
        if i != self.n1 - 1:
            return
        st = self.st(i, self.n2 - 1)
        total = st.t_i
        wavg, r = divmod(int(total), self.n1 * self.n2)
        self._mark(self.rank(i, self.n2 - 1), "corner",
                   {"total": int(total), "wavg": wavg, "remainder": r})
        # spread (wavg, R) up the last column; each last-column node then
        # spreads leftward along its row together with (s_i, t_i, t_prev)
        self._spread_row(i, wavg, r)
        if i > 0:
            self.send(i, self.n2 - 1, -1, 0, "mwa.spread", ("col", wavg, r))

    def _on_spread(self, msg: Message) -> None:
        payload = self._accept(msg)
        if payload is None:
            return
        i, j = self.coords(msg.dest)
        tag = payload[0]
        if tag == "col":
            _tag, wavg, r = payload
            self._spread_row(i, wavg, r)
            if i > 0:
                self.send(i, self.n2 - 1, -1, 0, "mwa.spread", payload)
        else:
            _tag, wavg, r, s_i, t_i, t_prev = payload
            st = self.st(i, j)
            st.wavg, st.remainder = wavg, r
            st.s_i, st.t_i, st.t_prev = s_i, t_i, t_prev
            if j > 0:
                self.send(i, j, 0, -1, "mwa.spread", payload)
            self._enter_step4(i, j)

    def _spread_row(self, i: int, wavg: int, r: int) -> None:
        st = self.st(i, self.n2 - 1)
        st.wavg, st.remainder = wavg, r
        payload = ("row", wavg, r, st.s_i, st.t_i, st.t_prev)
        if self.n2 > 1:
            self.send(i, self.n2 - 1, 0, -1, "mwa.spread", payload)
        self._enter_step4(i, self.n2 - 1)

    # ------------------------------------------------------------------
    # step 3 (local) + step 4 gating
    # ------------------------------------------------------------------
    def _quota(self, i: int, j: int) -> int:
        st = self.st(i, j)
        rank = i * self.n2 + j
        return st.wavg + (1 if rank < st.remainder else 0)

    def _Q(self, i: int, st: _NodeState) -> int:
        """Row-accumulated quota of rows 0..i — pure arithmetic from the
        (wavg, R) values ``st``'s node received in the spread."""
        upto = (i + 1) * self.n2  # ranks at or above this row boundary
        return st.wavg * upto + min(upto, st.remainder)

    def _enter_step4(self, i: int, j: int) -> None:
        self._mark(self.rank(i, j), "step4-enter")
        st = self.st(i, j)
        y_here = st.t_i - self._Q(i, st)
        y_above = (st.t_prev - self._Q(i - 1, st)) if i > 0 else 0
        if i > 0 and y_above > 0:
            pass  # wait for mwa.down from above
        else:
            st.recv_above_done = True
        if i < self.n1 - 1 and y_here < 0:
            pass  # wait for mwa.up from below
        else:
            st.recv_below_done = True
        # kick off scans at column 0
        if j == 0:
            if y_here > 0:
                st.down_scan = (y_here, 0)
            if i > 0 and y_above < 0:
                st.up_scan = (-y_above, 0)
        self._try_step4(i, j)

    def _try_step4(self, i: int, j: int) -> None:
        st = self.st(i, j)
        if st.wavg is None:
            return
        y_here = st.t_i - self._Q(i, st)
        y_above = (st.t_prev - self._Q(i - 1, st)) if i > 0 else 0
        # --- downward send (boundary i, y_i > 0) ---
        if (
            y_here > 0
            and not st.down_sent
            and st.down_scan is not None
            and st.recv_above_done
        ):
            eta, gamma = st.down_scan
            q = self._quota(i, j)
            delta = st.w - q
            if delta > eta + gamma:
                d = eta
            elif delta > gamma:
                d = delta - gamma
            else:
                d = 0
            d = max(0, min(d, eta, st.w))
            gamma = max(0, gamma - (delta - d))
            eta -= d
            st.down_sent = True
            st.w -= d
            self.vflow[i, j] += d
            self.send(i, j, 1, 0, "mwa.down", d)
            if j < self.n2 - 1:
                nxt = self.st(i, j + 1)
                nxt.down_scan = (eta, gamma)
                self.send(i, j, 0, 1, "mwa.hscan", ("dscan", eta, gamma))
        # --- upward send (boundary i-1, y_{i-1} < 0) ---
        down_ok = (y_here <= 0) or st.down_sent
        if (
            i > 0
            and y_above < 0
            and not st.up_sent
            and st.up_scan is not None
            and st.recv_below_done
            and down_ok
        ):
            eta, gamma = st.up_scan
            q = self._quota(i, j)
            delta = st.w - q
            if delta > eta + gamma:
                u = eta
            elif delta > gamma:
                u = delta - gamma
            else:
                u = 0
            u = max(0, min(u, eta, st.w))
            gamma = max(0, gamma - (delta - u))
            eta -= u
            st.up_sent = True
            st.w -= u
            self.vflow[i - 1, j] -= u
            self.send(i, j, -1, 0, "mwa.up", u)
            if j < self.n2 - 1:
                nxt = self.st(i, j + 1)
                nxt.up_scan = (eta, gamma)
                self.send(i, j, 0, 1, "mwa.hscan", ("uscan", eta, gamma))
        self._maybe_start_step5(i, j)

    def _on_down(self, msg: Message) -> None:
        payload = self._accept(msg)
        if payload is None:
            return
        i, j = self.coords(msg.dest)
        st = self.st(i, j)
        st.w += int(payload)
        st.recv_above_done = True
        self._try_step4(i, j)

    def _on_up(self, msg: Message) -> None:
        payload = self._accept(msg)
        if payload is None:
            return
        i, j = self.coords(msg.dest)
        st = self.st(i, j)
        st.w += int(payload)
        st.recv_below_done = True
        self._try_step4(i, j)

    def _on_hscan(self, msg: Message) -> None:
        payload = self._accept(msg)
        if payload is None:
            return
        i, j = self.coords(msg.dest)
        st = self.st(i, j)
        tag = payload[0]
        if tag == "dscan":
            st.down_scan = (payload[1], payload[2])
            self._try_step4(i, j)
        elif tag == "uscan":
            st.up_scan = (payload[1], payload[2])
            self._try_step4(i, j)
        else:  # step-5 prefix scan
            st.h_prefix = int(payload[1])
            self._maybe_start_step5(i, j)

    # ------------------------------------------------------------------
    # step 5: horizontal prefix flows
    # ------------------------------------------------------------------
    def _step4_settled(self, i: int, j: int) -> bool:
        st = self.st(i, j)
        if st.wavg is None:
            return False
        y_here = st.t_i - self._Q(i, st)
        y_above = (st.t_prev - self._Q(i - 1, st)) if i > 0 else 0
        if not st.recv_above_done or not st.recv_below_done:
            return False
        if y_here > 0 and not st.down_sent:
            return False
        if i > 0 and y_above < 0 and not st.up_sent:
            return False
        return True

    def _maybe_start_step5(self, i: int, j: int) -> None:
        st = self.st(i, j)
        if st.step5_started or not self._step4_settled(i, j):
            return
        if j > 0 and st.h_prefix is None:
            return  # prefix scan has not reached us yet
        st.step5_started = True
        self._mark(self.rank(i, j), "step5-start")
        prefix = st.h_prefix or 0
        q = self._quota(i, j)
        # the scan is defined over post-step-4 loads; any step-5 chunks
        # that already slipped in must not distort the prefix arithmetic
        w4 = st.w - st.early_left - st.early_right
        v = prefix + (w4 - q)  # net flow to the right of us
        z = prefix  # net flow entering from our left edge
        if j < self.n2 - 1:
            self.send(i, j, 0, 1, "mwa.hscan", ("hpre", v))
        st.out_right = max(v, 0) if j < self.n2 - 1 else 0
        st.out_left = max(-z, 0) if j > 0 else 0
        st.in_left = max(max(z, 0) - st.early_left, 0) if j > 0 else 0
        st.in_right = max(max(-v, 0) - st.early_right, 0) if j < self.n2 - 1 else 0
        st.early_left = st.early_right = 0
        self._flush(i, j)

    def _flush(self, i: int, j: int) -> None:
        """Ship as much pending horizontal flow as inventory allows."""
        st = self.st(i, j)
        if not st.step5_started:
            return
        q = self._quota(i, j)
        while st.out_right + st.out_left > 0:
            # ship only what will not dip below the quota we must end
            # with, accounting for tasks still owed to us from neighbors
            available = st.w - max(0, q - st.in_left - st.in_right)
            if available <= 0:
                break
            if st.out_right > 0:
                chunk = min(st.out_right, available)
                st.out_right -= chunk
                st.w -= chunk
                self.hflow[i, j] += chunk
                self.send(i, j, 0, 1, "mwa.htask", chunk)
            elif st.out_left > 0:
                chunk = min(st.out_left, available)
                st.out_left -= chunk
                st.w -= chunk
                self.hflow[i, j - 1] -= chunk
                self.send(i, j, 0, -1, "mwa.htask", chunk)

    def _on_htask(self, msg: Message) -> None:
        payload = self._accept(msg)
        if payload is None:
            return
        i, j = self.coords(msg.dest)
        src_i, src_j = self.coords(msg.src)
        st = self.st(i, j)
        amount = int(payload)
        st.w += amount
        from_left = src_j < j
        if not st.step5_started:
            # neighbor flushed before we even computed our prefix; count
            # it so the expected-in bookkeeping starts consistent
            if from_left:
                st.early_left += amount
            else:
                st.early_right += amount
            return
        if from_left:
            st.in_left -= amount
        else:
            st.in_right -= amount
        self._flush(i, j)

    # ------------------------------------------------------------------
    def result(self) -> MWAProtocolResult:
        final = np.array([s.w for s in self.state], dtype=np.int64).reshape(
            self.n1, self.n2
        )
        quotas = np.array(
            [self._quota(i, j) for i in range(self.n1) for j in range(self.n2)],
            dtype=np.int64,
        ).reshape(self.n1, self.n2)
        cost = int(np.abs(self.vflow).sum() + np.abs(self.hflow).sum())
        return MWAProtocolResult(
            final=final,
            quotas=quotas,
            vflow=self.vflow,
            hflow=self.hflow,
            cost=cost,
            messages=self.machine.network.stats.messages,
            elapsed=self.machine.sim.now,
        )


def run_mwa_protocol(machine: Machine, loads: np.ndarray,
                     rows: Optional[tuple[int, int]] = None,
                     epoch: Optional[int] = None,
                     ) -> MWAProtocolResult:
    """Run one full distributed MWA round on ``machine`` and return the
    outcome.  The machine must be freshly constructed (the protocol owns
    its message kinds) with a :class:`MeshTopology`.

    ``rows=(lo, hi)`` runs the component-local variant over the mesh band
    ``lo <= i < hi`` only; ``loads`` must then have shape
    ``(hi - lo, n2)``.  Balancing is confined to the band — exactly the
    degraded MWA a partitioned RIPS run performs per component.

    ``epoch`` scopes the round to one membership epoch: messages are
    epoch-tagged and stale-epoch traffic is dropped on receipt (see
    :meth:`_MWAProtocol._accept`).  ``None`` leaves the wire format of
    static-membership rounds bit-identical.
    """
    proto = _MWAProtocol(machine, loads, rows=rows, epoch=epoch)
    proto.start()
    machine.run()
    res = proto.result()
    if not np.array_equal(res.final, res.quotas):  # pragma: no cover
        raise RuntimeError("distributed MWA did not converge to the quotas")
    return res


def member_row_bands(
    mesh: MeshTopology, members: Iterable[int]
) -> list[tuple[int, int]]:
    """Maximal contiguous ``(lo, hi)`` row bands fully populated by
    ``members``.

    The band-mode protocol needs every node of every row it spans; on an
    elastic mesh the member set can have holes (standby or departed
    ranks), so an epoch's band decomposition is the set of contiguous
    runs of *complete* rows.  Rows with any non-member rank are skipped —
    their member nodes balance through the RIPS survivor fallback
    instead.
    """
    mset = set(members)
    full = [all(mesh.rank_of(i, j) in mset for j in range(mesh.n2))
            for i in range(mesh.n1)]
    bands: list[tuple[int, int]] = []
    i = 0
    while i < mesh.n1:
        if not full[i]:
            i += 1
            continue
        lo = i
        while i < mesh.n1 and full[i]:
            i += 1
        bands.append((lo, i))
    return bands
