"""repro — Runtime Incremental Parallel Scheduling (RIPS), reproduced.

A from-scratch Python implementation of Wu & Shu, "High-Performance
Incremental Scheduling on Massively Parallel Computers — A Global
Approach" (SC'95): the RIPS runtime, the Mesh Walking Algorithm,
the comparison balancers (random / gradient / RID), the simulated
Paragon-class multicomputer they run on, the paper's three applications
(N-Queens, IDA* 15-puzzle, a synthetic GROMOS), and a harness that
regenerates every table and figure of the evaluation section.

Quickstart
----------
>>> from repro import Machine, MeshTopology, RIPS, Session
>>> from repro.apps import nqueens_trace
>>> trace = nqueens_trace(10, split_depth=3)
>>> machine = Machine(MeshTopology(4, 4), seed=42)
>>> metrics = Session.from_parts(trace, RIPS("lazy", "any"), machine).run()
>>> metrics.efficiency > 0.3
True

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .balancers import (
    Driver,
    ExecutionConfig,
    GradientModel,
    RandomAllocation,
    ReceiverInitiatedDiffusion,
    RunMetrics,
    SenderInitiatedDiffusion,
    Strategy,
)
from .core import (
    GlobalPolicy,
    LocalPolicy,
    MeshWalkPlanner,
    OptimalPlanner,
    RIPS,
    TreeWalkPlanner,
    mwa_schedule,
)
from .machine import (
    HypercubeTopology,
    LatencyModel,
    Machine,
    MeshTopology,
    Simulator,
    Topology,
    TorusTopology,
    TreeTopology,
    make_topology,
    mesh_shape_for,
)
from .optimal import min_nonlocal_tasks, optimal_efficiency, optimal_redistribution
from .session import Session
from .tasks import TraceTask, WorkloadTrace

__version__ = "1.0.0"

__all__ = [
    "Driver",
    "ExecutionConfig",
    "GlobalPolicy",
    "GradientModel",
    "HypercubeTopology",
    "LatencyModel",
    "LocalPolicy",
    "Machine",
    "MeshTopology",
    "MeshWalkPlanner",
    "OptimalPlanner",
    "RIPS",
    "RandomAllocation",
    "ReceiverInitiatedDiffusion",
    "RunMetrics",
    "SenderInitiatedDiffusion",
    "Session",
    "Simulator",
    "Strategy",
    "Topology",
    "TorusTopology",
    "TraceTask",
    "TreeTopology",
    "TreeWalkPlanner",
    "WorkloadTrace",
    "make_topology",
    "mesh_shape_for",
    "min_nonlocal_tasks",
    "mwa_schedule",
    "optimal_efficiency",
    "optimal_redistribution",
    "__version__",
]
