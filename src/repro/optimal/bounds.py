"""Scheduling lower bounds: Lemma 1 and the Table-II optimal efficiency.

* :func:`min_nonlocal_tasks` — Lemma 1: to balance the load, at least
  ``m = sum(wavg - w_j)`` tasks (over underloaded nodes ``j``) must move.
* :func:`optimal_efficiency` — Table II's "optimal efficiency": the best
  possible efficiency for a workload on ``N`` processors assuming an
  ideal scheduler and zero overhead.  The binding constraints are task
  granularity (a task cannot be split), spawn chains (a task cannot
  start before the task that created it finishes), and wave barriers
  (IDA* iterations, MD timesteps).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tasks.trace import WorkloadTrace

__all__ = ["min_nonlocal_tasks", "optimal_parallel_time", "optimal_efficiency"]


def min_nonlocal_tasks(loads: Sequence[int] | np.ndarray,
                       quotas: Sequence[int] | np.ndarray | None = None) -> int:
    """Lemma 1: the minimum number of tasks that must change processor.

    With explicit ``quotas`` this is ``sum max(0, q_j - w_j)``; the
    default quota is the balanced average (requires divisible total).
    """
    w = np.asarray(loads, dtype=np.int64)
    if quotas is None:
        total = int(w.sum())
        if total % w.size != 0:
            raise ValueError(
                "total load not divisible by N; pass explicit quotas"
            )
        q = np.full(w.size, total // w.size, dtype=np.int64)
    else:
        q = np.asarray(quotas, dtype=np.int64)
        if q.shape != w.shape:
            raise ValueError("quotas shape mismatch")
    return int(np.maximum(q - w, 0).sum())


def _wave_chain_seconds(trace: WorkloadTrace) -> list[float]:
    """Per-wave critical spawn-chain length in seconds.

    Within a wave, a task can only start after the chain of tasks that
    spawned it; the wave cannot finish faster than its longest chain.
    """
    n = len(trace)
    finish = [0.0] * n
    chains = [0.0] * trace.num_waves
    child_ids = {c for t in trace for c in t.children}
    order: list[int] = []
    stack = [t.id for t in trace if t.id not in child_ids]
    seen = [False] * n
    while stack:
        tid = stack.pop()
        if seen[tid]:
            continue
        seen[tid] = True
        order.append(tid)
        stack.extend(trace.task(tid).children)
    for tid in order:
        t = trace.task(tid)
        finish[tid] += t.work * trace.sec_per_unit
        chains[t.wave] = max(chains[t.wave], finish[tid])
        for c in t.children:
            carried = finish[tid] if trace.task(c).wave == t.wave else 0.0
            finish[c] = max(finish[c], carried)
    return chains


def optimal_parallel_time(trace: WorkloadTrace, num_nodes: int) -> float:
    """Lower bound on parallel makespan with an ideal zero-overhead
    scheduler: per wave, ``max(work/N, critical chain)``, summed over
    waves (waves are globally serialized)."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    chains = _wave_chain_seconds(trace)
    total = 0.0
    for wave in range(trace.num_waves):
        ts_w = trace.total_work_seconds(wave)
        total += max(ts_w / num_nodes, chains[wave])
    return total


def optimal_efficiency(trace: WorkloadTrace, num_nodes: int) -> float:
    """Table II: ``mu_opt = Ts / (N * Tp_opt)``."""
    ts = trace.total_work_seconds()
    if ts == 0:
        return 1.0
    tp = optimal_parallel_time(trace, num_nodes)
    return ts / (num_nodes * tp)
