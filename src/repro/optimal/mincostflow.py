"""Minimum-cost maximum-flow, from scratch.

Section 3 of the paper reduces optimal task redistribution to min-cost
max-flow (citing Lawler): every interconnect edge gets capacity ``inf``
and cost 1, a super-source feeds overloaded nodes, a super-sink drains
underloaded ones, and a minimum-cost integral flow is an optimal
transfer plan.

We implement successive shortest augmenting paths with Johnson
potentials (Dijkstra on reduced costs).  All costs must be
non-negative; with integer capacities the result is integral.  Each
augmentation saturates at least one arc or one supply, so the number of
Dijkstra runs is O(V + E) — in the Figure-4 experiments (unit costs,
mesh graphs up to 16x16) it is effectively O(V).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["MinCostFlow", "FlowResult"]

INF = float("inf")


@dataclass
class FlowResult:
    """Outcome of :meth:`MinCostFlow.solve`."""

    flow_value: int
    cost: int
    #: flow per arc in insertion order (parallel to ``add_edge`` calls)
    edge_flows: list[int]


class MinCostFlow:
    """Min-cost max-flow on a directed graph with non-negative costs.

    >>> g = MinCostFlow(4)
    >>> _ = g.add_edge(0, 1, 2, 1)
    >>> _ = g.add_edge(0, 2, 1, 2)
    >>> _ = g.add_edge(1, 3, 1, 1)
    >>> _ = g.add_edge(2, 3, 2, 1)
    >>> _ = g.add_edge(1, 2, 1, 1)
    >>> r = g.solve(0, 3)
    >>> (r.flow_value, r.cost)
    (3, 9)
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("graph needs at least one node")
        self.n = num_nodes
        # adjacency: per node, list of arc indices into the arrays below
        self.adj: list[list[int]] = [[] for _ in range(num_nodes)]
        self._to: list[int] = []
        self._cap: list[float] = []
        self._cost: list[float] = []
        self._num_edges = 0

    def add_edge(self, u: int, v: int, capacity: float, cost: float) -> int:
        """Add arc ``u -> v``; returns its index (for ``edge_flows``)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError("edge endpoint out of range")
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if cost < 0:
            raise ValueError("costs must be non-negative for this solver")
        # forward arc at even index, reverse at odd
        self.adj[u].append(len(self._to))
        self._to.append(v)
        self._cap.append(capacity)
        self._cost.append(cost)
        self.adj[v].append(len(self._to))
        self._to.append(u)
        self._cap.append(0)
        self._cost.append(-cost)
        self._num_edges += 1
        return self._num_edges - 1

    # ------------------------------------------------------------------
    def solve(self, source: int, sink: int, max_flow: float = INF) -> FlowResult:
        """Push up to ``max_flow`` units from ``source`` to ``sink`` at
        minimum cost.  Pushes as much as the network allows."""
        if source == sink:
            raise ValueError("source and sink must differ")
        n = self.n
        to, cap, cost = self._to, self._cap, self._cost
        arc_flow = [0.0] * len(to)
        potential = [0.0] * n
        total_flow = 0
        total_cost = 0.0

        while total_flow < max_flow:
            # Dijkstra on reduced costs
            dist = [INF] * n
            prev_arc = [-1] * n
            dist[source] = 0.0
            pq: list[tuple[float, int]] = [(0.0, source)]
            while pq:
                d, u = heapq.heappop(pq)
                if d > dist[u] + 1e-12:
                    continue
                for aidx in self.adj[u]:
                    if cap[aidx] <= 0:
                        continue
                    v = to[aidx]
                    nd = d + cost[aidx] + potential[u] - potential[v]
                    if nd < dist[v] - 1e-12:
                        dist[v] = nd
                        prev_arc[v] = aidx
                        heapq.heappush(pq, (nd, v))
            if dist[sink] == INF:
                break
            for v in range(n):
                if dist[v] < INF:
                    potential[v] += dist[v]
            # bottleneck along the path
            push = max_flow - total_flow
            v = sink
            while v != source:
                aidx = prev_arc[v]
                push = min(push, cap[aidx])
                v = to[aidx ^ 1]
            v = sink
            path_cost = 0.0
            while v != source:
                aidx = prev_arc[v]
                cap[aidx] -= push
                cap[aidx ^ 1] += push
                arc_flow[aidx] += push
                arc_flow[aidx ^ 1] -= push
                path_cost += cost[aidx]
                v = to[aidx ^ 1]
            total_flow += push
            total_cost += push * path_cost

        edge_flows = [
            int(round(max(arc_flow[2 * e], 0.0))) for e in range(self._num_edges)
        ]
        return FlowResult(
            flow_value=int(round(total_flow)),
            cost=int(round(total_cost)),
            edge_flows=edge_flows,
        )
