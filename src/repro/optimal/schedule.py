"""Optimal task redistribution via min-cost max-flow (paper, Section 3).

Builds exactly the network the paper describes: every interconnect edge
gets ``(capacity=inf, cost=1)`` in both directions; a source node ``s``
with an arc ``(s, i)`` of capacity ``w_i - wavg`` / cost 0 to every
overloaded node, and a sink ``t`` fed by every underloaded node with
capacity ``wavg - w_j`` (quota-adjusted when ``T mod N != 0``).  The
min-cost integral flow's cost is the minimum number of task-edge
crossings, ``min sum_k e_k`` — the baseline C_OPT of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.machine.topology import Topology
from repro.core.mwa import quotas_row_major
from .mincostflow import INF, MinCostFlow

__all__ = ["OptimalPlan", "optimal_redistribution"]


@dataclass
class OptimalPlan:
    """Optimal redistribution for one load vector on one topology."""

    cost: int
    #: tasks moved across each undirected topology edge (abs value),
    #: keyed like ``list(topology.edges())``
    edge_transfers: list[int]
    quotas: np.ndarray


def optimal_redistribution(
    topology: Topology,
    loads: Sequence[int] | np.ndarray,
    quotas: Sequence[int] | np.ndarray | None = None,
) -> OptimalPlan:
    """Minimum-cost plan moving ``loads`` to ``quotas`` on ``topology``.

    ``quotas`` defaults to the paper's row-major quota rule (which for a
    non-mesh topology is simply rank-major).
    """
    w = np.asarray(loads, dtype=np.int64)
    n = topology.num_nodes
    if w.shape != (n,):
        raise ValueError(f"loads must have shape ({n},)")
    if np.any(w < 0):
        raise ValueError("negative loads")
    total = int(w.sum())
    if quotas is None:
        q = quotas_row_major(1, n, total).ravel()
    else:
        q = np.asarray(quotas, dtype=np.int64)
        if q.shape != (n,):
            raise ValueError(f"quotas must have shape ({n},)")
        if int(q.sum()) != total:
            raise ValueError("quotas must sum to the total load")

    surplus = w - q
    g = MinCostFlow(n + 2)
    s, t = n, n + 1
    edge_list = list(topology.edges())
    edge_ids: list[tuple[int, int]] = []
    for (u, v) in edge_list:
        e_uv = g.add_edge(u, v, INF, 1)
        e_vu = g.add_edge(v, u, INF, 1)
        edge_ids.append((e_uv, e_vu))
    need = 0
    for i in range(n):
        if surplus[i] > 0:
            g.add_edge(s, i, int(surplus[i]), 0)
            need += int(surplus[i])
        elif surplus[i] < 0:
            g.add_edge(i, t, int(-surplus[i]), 0)
    result = g.solve(s, t)
    if result.flow_value != need:  # pragma: no cover - connected topologies
        raise RuntimeError("optimal redistribution infeasible")
    edge_transfers = [
        result.edge_flows[e_uv] + result.edge_flows[e_vu]
        for (e_uv, e_vu) in edge_ids
    ]
    return OptimalPlan(cost=result.cost, edge_transfers=edge_transfers,
                       quotas=q.copy())
