"""Optimal scheduling reference: min-cost flow and lower bounds."""

from .bounds import min_nonlocal_tasks, optimal_efficiency, optimal_parallel_time
from .mincostflow import FlowResult, MinCostFlow
from .schedule import OptimalPlan, optimal_redistribution

__all__ = [
    "FlowResult",
    "MinCostFlow",
    "OptimalPlan",
    "min_nonlocal_tasks",
    "optimal_efficiency",
    "optimal_parallel_time",
    "optimal_redistribution",
]
